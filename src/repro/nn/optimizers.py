"""Gradient-descent optimizers (the paper's sweep, Section 4.3).

All optimizers share the slot-state pattern: per-parameter auxiliary
arrays keyed by an opaque parameter id, created lazily on first update.
``update`` mutates the parameter arrays in place — layers keep their
identity across steps.

RMSprop is the paper's final choice for both the power and time models.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

__all__ = ["Optimizer", "SGD", "RMSprop", "Adam", "Adamax", "Nadam", "AdaDelta", "get_optimizer"]


class Optimizer(ABC):
    """Base class holding per-parameter slot state."""

    name: str = "abstract"

    def __init__(self, learning_rate: float) -> None:
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        self.learning_rate = float(learning_rate)
        self._slots: dict[tuple[int, str], dict[str, np.ndarray]] = {}
        self._step = 0

    def begin_step(self) -> None:
        """Advance the shared step counter (bias correction schedules)."""
        self._step += 1

    def _slot(self, key: tuple[int, str], names: tuple[str, ...], like: np.ndarray) -> dict[str, np.ndarray]:
        if key not in self._slots:
            self._slots[key] = {n: np.zeros_like(like) for n in names}
        return self._slots[key]

    @abstractmethod
    def update(self, key: tuple[int, str], param: np.ndarray, grad: np.ndarray) -> None:
        """Apply one update to ``param`` in place."""

    def reset(self) -> None:
        """Drop all slot state (fresh training run)."""
        self._slots.clear()
        self._step = 0


class SGD(Optimizer):
    """Stochastic gradient descent with optional classical momentum."""

    name = "sgd"

    def __init__(self, learning_rate: float = 0.01, momentum: float = 0.0) -> None:
        super().__init__(learning_rate)
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.momentum = float(momentum)

    def update(self, key: tuple[int, str], param: np.ndarray, grad: np.ndarray) -> None:
        if self.momentum == 0.0:  # repro: noqa[NUM001] — 0.0 exactly selects the momentum-free update (config contract)
            param -= self.learning_rate * grad
            return
        slot = self._slot(key, ("v",), param)
        slot["v"] *= self.momentum
        slot["v"] += grad
        param -= self.learning_rate * slot["v"]


class RMSprop(Optimizer):
    """Tieleman & Hinton: divide by a running RMS of recent gradients."""

    name = "rmsprop"

    def __init__(self, learning_rate: float = 0.001, rho: float = 0.9, epsilon: float = 1e-7) -> None:
        super().__init__(learning_rate)
        if not 0.0 < rho < 1.0:
            raise ValueError("rho must be in (0, 1)")
        self.rho = float(rho)
        self.epsilon = float(epsilon)

    def update(self, key: tuple[int, str], param: np.ndarray, grad: np.ndarray) -> None:
        slot = self._slot(key, ("sq",), param)
        slot["sq"] *= self.rho
        slot["sq"] += (1.0 - self.rho) * grad**2
        param -= self.learning_rate * grad / (np.sqrt(slot["sq"]) + self.epsilon)


class Adam(Optimizer):
    """Adam with bias-corrected first and second moments."""

    name = "adam"

    def __init__(
        self,
        learning_rate: float = 0.001,
        beta1: float = 0.9,
        beta2: float = 0.999,
        epsilon: float = 1e-7,
    ) -> None:
        super().__init__(learning_rate)
        if not (0.0 < beta1 < 1.0 and 0.0 < beta2 < 1.0):
            raise ValueError("betas must be in (0, 1)")
        self.beta1, self.beta2, self.epsilon = float(beta1), float(beta2), float(epsilon)

    def update(self, key: tuple[int, str], param: np.ndarray, grad: np.ndarray) -> None:
        slot = self._slot(key, ("m", "v"), param)
        t = max(self._step, 1)
        slot["m"] *= self.beta1
        slot["m"] += (1.0 - self.beta1) * grad
        slot["v"] *= self.beta2
        slot["v"] += (1.0 - self.beta2) * grad**2
        m_hat = slot["m"] / (1.0 - self.beta1**t)
        v_hat = slot["v"] / (1.0 - self.beta2**t)
        param -= self.learning_rate * m_hat / (np.sqrt(v_hat) + self.epsilon)


class Adamax(Optimizer):
    """Adam variant with an infinity-norm second moment."""

    name = "adamax"

    def __init__(
        self,
        learning_rate: float = 0.001,
        beta1: float = 0.9,
        beta2: float = 0.999,
        epsilon: float = 1e-7,
    ) -> None:
        super().__init__(learning_rate)
        self.beta1, self.beta2, self.epsilon = float(beta1), float(beta2), float(epsilon)

    def update(self, key: tuple[int, str], param: np.ndarray, grad: np.ndarray) -> None:
        slot = self._slot(key, ("m", "u"), param)
        t = max(self._step, 1)
        slot["m"] *= self.beta1
        slot["m"] += (1.0 - self.beta1) * grad
        np.maximum(self.beta2 * slot["u"], np.abs(grad), out=slot["u"])
        m_hat = slot["m"] / (1.0 - self.beta1**t)
        param -= self.learning_rate * m_hat / (slot["u"] + self.epsilon)


class Nadam(Optimizer):
    """Adam with Nesterov momentum (Dozat)."""

    name = "nadam"

    def __init__(
        self,
        learning_rate: float = 0.001,
        beta1: float = 0.9,
        beta2: float = 0.999,
        epsilon: float = 1e-7,
    ) -> None:
        super().__init__(learning_rate)
        self.beta1, self.beta2, self.epsilon = float(beta1), float(beta2), float(epsilon)

    def update(self, key: tuple[int, str], param: np.ndarray, grad: np.ndarray) -> None:
        slot = self._slot(key, ("m", "v"), param)
        t = max(self._step, 1)
        slot["m"] *= self.beta1
        slot["m"] += (1.0 - self.beta1) * grad
        slot["v"] *= self.beta2
        slot["v"] += (1.0 - self.beta2) * grad**2
        m_hat = slot["m"] / (1.0 - self.beta1 ** (t + 1))
        v_hat = slot["v"] / (1.0 - self.beta2**t)
        nesterov = self.beta1 * m_hat + (1.0 - self.beta1) * grad / (1.0 - self.beta1**t)
        param -= self.learning_rate * nesterov / (np.sqrt(v_hat) + self.epsilon)


class AdaDelta(Optimizer):
    """Zeiler's AdaDelta: unit-corrected adaptive steps, no raw LR.

    ``learning_rate`` acts as a final scale factor (Keras semantics,
    default 1.0).
    """

    name = "adadelta"

    def __init__(self, learning_rate: float = 1.0, rho: float = 0.95, epsilon: float = 1e-6) -> None:
        super().__init__(learning_rate)
        self.rho = float(rho)
        self.epsilon = float(epsilon)

    def update(self, key: tuple[int, str], param: np.ndarray, grad: np.ndarray) -> None:
        slot = self._slot(key, ("sq", "dx"), param)
        slot["sq"] *= self.rho
        slot["sq"] += (1.0 - self.rho) * grad**2
        step = np.sqrt(slot["dx"] + self.epsilon) / np.sqrt(slot["sq"] + self.epsilon) * grad
        slot["dx"] *= self.rho
        slot["dx"] += (1.0 - self.rho) * step**2
        param -= self.learning_rate * step


_REGISTRY: dict[str, type[Optimizer]] = {
    cls.name: cls  # type: ignore[misc]
    for cls in (SGD, RMSprop, Adam, Adamax, Nadam, AdaDelta)
}


def get_optimizer(name: str, **kwargs: float) -> Optimizer:
    """Instantiate an optimizer by name (case-insensitive)."""
    try:
        return _REGISTRY[name.lower()](**kwargs)  # type: ignore[arg-type]
    except KeyError:
        raise KeyError(f"unknown optimizer {name!r}; known: {sorted(_REGISTRY)}") from None
