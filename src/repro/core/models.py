"""Power and time DNNs with the paper's hyper-parameters (Section 4.3).

Both models are feedforward networks with 3 hidden layers of 64 SELU
neurons, trained with RMSprop on MSE at batch size 64 over an 80/20
split.  The power model trains 100 epochs; the time model 25 ("slight
overfitting was observed" beyond that — paper Fig. 6 (b)).

Features and targets are standardised internally; callers deal only in
physical units (watts / slowdown factors / seconds).
"""

from __future__ import annotations

import hashlib
from collections.abc import Sequence
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.core.dataset import DVFSDataset, FeatureVector
from repro.features.scaling import StandardScaler
from repro.nn.network import FeedForwardNetwork
from repro.nn.optimizers import RMSprop
from repro.nn.serialize import load_network, save_network
from repro.nn.training import History, TrainConfig, train

__all__ = ["PAPER_FEATURES", "InferenceSpec", "PowerModel", "TimeModel"]

#: The paper's Eq. 1 feature names, in canonical column order.
PAPER_FEATURES: tuple[str, ...] = ("fp_active", "dram_active", "sm_app_clock")


@dataclass(frozen=True)
class InferenceSpec:
    """Everything an external engine needs to run one model's forward pass.

    A self-contained snapshot — scaler affines, per-layer weight/bias
    copies with activation names, the target transform flag, and the
    weight fingerprint — so :mod:`repro.serving.engine` can pack and fold
    the stack without reaching into model internals, and so shard-pool
    workers can rebuild the forward pass from shared memory alone.
    """

    x_mean: np.ndarray
    x_scale: np.ndarray
    y_mean: np.ndarray
    y_scale: np.ndarray
    log_target: bool
    #: Forward-order ``(W, b, activation_name)`` copies (see Dense.spec).
    layers: tuple[tuple[np.ndarray, np.ndarray, str], ...]
    #: SHA-256 weight digest; engines key their packed arenas on it.
    fingerprint: str


class _RegressionModel:
    """Shared scaler + FNN wrapper for the two paper models.

    Targets are log-transformed before standardisation (``log_target``,
    on by default): power and time are strictly positive with
    multiplicative structure, and MSE on the log target optimises
    *relative* error — the quantity the paper's accuracy metric
    (100 - MAPE) actually measures.
    """

    #: Subclasses set these to the paper's values.
    epochs: int = 100
    target_name: str = "target"

    def __init__(
        self,
        *,
        hidden: tuple[int, ...] = (64, 64, 64),
        activation: str = "selu",
        learning_rate: float = 0.001,
        batch_size: int = 64,
        log_target: bool = True,
        seed: int = 0,
    ) -> None:
        self.hidden = hidden
        self.activation = activation
        self.learning_rate = learning_rate
        self.batch_size = batch_size
        self.log_target = log_target
        self.seed = seed
        self.network: FeedForwardNetwork | None = None
        self.history: History | None = None
        self._x_scaler = StandardScaler()
        self._y_scaler = StandardScaler()

    # ------------------------------------------------------------------
    def _target(self, dataset: DVFSDataset) -> np.ndarray:
        raise NotImplementedError

    def _forward_target(self, y: np.ndarray) -> np.ndarray:
        if not self.log_target:
            return y
        if np.any(y <= 0):
            raise ValueError(f"{self.target_name}: log target requires positive values")
        return np.log(y)

    def _inverse_target(self, y: np.ndarray) -> np.ndarray:
        return np.exp(y) if self.log_target else y

    def fit(self, dataset: DVFSDataset, *, epochs: int | None = None) -> History:
        """Train on a DVFS-sweep dataset; returns the loss history."""
        x = self._x_scaler.fit_transform(dataset.x)
        y = self._y_scaler.fit_transform(self._forward_target(self._target(dataset))[:, None])
        self.network = FeedForwardNetwork.build(
            x.shape[1], self.hidden, 1, activation=self.activation, seed=self.seed
        )
        self.history = train(
            self.network,
            x,
            y,
            optimizer=RMSprop(self.learning_rate),
            loss="mse",
            config=TrainConfig(epochs=epochs if epochs is not None else self.epochs, batch_size=self.batch_size),
            seed=self.seed,
        )
        return self.history

    # ------------------------------------------------------------------
    def predict_raw(self, x: np.ndarray) -> np.ndarray:
        """Predict in physical units from a (n, 3) feature matrix."""
        if self.network is None:
            raise RuntimeError("model used before fit()/load()")
        xs = self._x_scaler.transform(np.atleast_2d(np.asarray(x, dtype=float)))
        ys = self.network.predict(xs)
        return self._inverse_target(self._y_scaler.inverse_transform(ys)).reshape(-1)

    def predict_curve(self, features: FeatureVector, freqs_mhz: np.ndarray) -> np.ndarray:
        """Predict across a clock grid by feature replication.

        The activity features measured at the default clock are held
        constant; only ``sm_app_clock`` varies — the paper's online-phase
        mechanic (Section 4, "prediction phase").
        """
        freqs = np.asarray(freqs_mhz, dtype=float)
        x = np.column_stack(
            [
                np.full(freqs.size, features.fp_active),
                np.full(freqs.size, features.dram_active),
                freqs,
            ]
        )
        return self.predict_raw(x)

    def predict_curve_many(
        self, features: Sequence[FeatureVector], freqs_mhz: np.ndarray
    ) -> np.ndarray:
        """Predict one curve per feature vector in a single stacked pass.

        Builds one ``(n_features * n_freqs, 3)`` matrix, standardises and
        inverse-transforms it in vectorized elementwise passes, and runs
        the network with the matmuls blocked per curve
        (:meth:`~repro.nn.network.FeedForwardNetwork.predict_blocked`), so
        every row of the returned ``(n_features, n_freqs)`` matrix is
        bitwise-identical to the corresponding :meth:`predict_curve` call.
        """
        if self.network is None:
            raise RuntimeError("model used before fit()/load()")
        freqs = np.asarray(freqs_mhz, dtype=float)
        n, f = len(features), freqs.size
        if n == 0:
            return np.empty((0, f))
        x = np.empty((n * f, 3))
        x[:, 0] = np.repeat([fv.fp_active for fv in features], f)
        x[:, 1] = np.repeat([fv.dram_active for fv in features], f)
        x[:, 2] = np.tile(freqs, n)
        xs = self._x_scaler.transform(x)
        ys = self.network.predict_blocked(xs, f)
        return self._inverse_target(self._y_scaler.inverse_transform(ys)).reshape(n, f)

    def inference_spec(self) -> InferenceSpec:
        """Snapshot this model for an external packed-inference engine.

        Arrays are copies (see :meth:`~repro.nn.layers.Dense.spec`), so
        engines may fold the scaler affines into the weights in place;
        the embedded fingerprint lets them detect refits and repack.
        """
        if self.network is None:
            raise RuntimeError("model used before fit()/load()")
        return InferenceSpec(
            x_mean=np.ascontiguousarray(self._x_scaler.mean_, dtype=float),
            x_scale=np.ascontiguousarray(self._x_scaler.scale_, dtype=float),
            y_mean=np.ascontiguousarray(self._y_scaler.mean_, dtype=float),
            y_scale=np.ascontiguousarray(self._y_scaler.scale_, dtype=float),
            log_target=self.log_target,
            layers=self.network.layer_specs(),
            fingerprint=self.fingerprint(),
        )

    def fingerprint(self) -> str:
        """Digest of the trained weights plus scaler state.

        Serving-layer cache keys include it so memoized curves can never
        outlive the model that produced them: refitting or loading other
        weights changes the fingerprint and orphans every old entry.
        """
        if self.network is None:
            raise RuntimeError("model used before fit()/load()")
        digest = hashlib.sha256()
        digest.update(type(self).__name__.encode())
        digest.update(b"log" if self.log_target else b"raw")
        for scaler in (self._x_scaler, self._y_scaler):
            digest.update(np.ascontiguousarray(scaler.mean_).tobytes())
            digest.update(np.ascontiguousarray(scaler.scale_).tobytes())
        for layer in self.network.layers:
            digest.update(np.ascontiguousarray(layer.params["W"]).tobytes())
            digest.update(np.ascontiguousarray(layer.params["b"]).tobytes())
        return digest.hexdigest()

    # ------------------------------------------------------------------
    def save(self, path: str | Path) -> Path:
        """Persist network weights plus scaler state."""
        if self.network is None:
            raise RuntimeError("nothing to save before fit()")
        path = save_network(self.network, path)
        np.savez(
            path.with_suffix(".scalers.npz"),
            x_mean=self._x_scaler.mean_,
            x_scale=self._x_scaler.scale_,
            y_mean=self._y_scaler.mean_,
            y_scale=self._y_scaler.scale_,
            log_target=np.array(self.log_target),
        )
        return path

    def load(self, path: str | Path) -> None:
        """Restore a model saved by :meth:`save`."""
        path = Path(path)
        self.network = load_network(path)
        with np.load(path.with_suffix(".scalers.npz")) as data:
            self._x_scaler.mean_ = np.array(data["x_mean"])
            self._x_scaler.scale_ = np.array(data["x_scale"])
            self._y_scaler.mean_ = np.array(data["y_mean"])
            self._y_scaler.scale_ = np.array(data["y_scale"])
            self.log_target = bool(data["log_target"])


class PowerModel(_RegressionModel):
    """Predicts board power (paper Eq. 3/4; 100 epochs).

    ``reference_power_w`` enables cross-architecture portability (paper
    Section 4.2.4 / abstract): when set, training targets are normalised
    to fractions of the training GPU's TDP, and predictions can be
    rescaled to any target GPU's TDP.  Without it, the model predicts
    absolute watts and only transfers between same-envelope GPUs.
    """

    epochs = 100
    target_name = "power_usage"

    def __init__(self, *, reference_power_w: float | None = None, **kwargs) -> None:
        if reference_power_w is not None and reference_power_w <= 0:
            raise ValueError("reference_power_w must be positive")
        super().__init__(**kwargs)
        self.reference_power_w = reference_power_w

    def _target(self, dataset: DVFSDataset) -> np.ndarray:
        if self.reference_power_w is not None:
            return dataset.y_power / self.reference_power_w
        return dataset.y_power

    def predict_power(
        self,
        features: FeatureVector,
        freqs_mhz: np.ndarray,
        *,
        target_power_scale_w: float | None = None,
    ) -> np.ndarray:
        """Watts across a clock grid (clipped at zero).

        ``target_power_scale_w`` rescales TDP-normalised predictions onto
        another GPU's power envelope; it defaults to the training
        reference and is rejected when the model was trained on absolute
        watts (a silent unit mismatch otherwise).
        """
        curve = self.predict_curve(features, freqs_mhz)
        if self.reference_power_w is None:
            if target_power_scale_w is not None:
                raise ValueError(
                    "model trained on absolute watts; rebuild with reference_power_w "
                    "to rescale across architectures"
                )
            return np.maximum(curve, 0.0)
        scale = target_power_scale_w if target_power_scale_w is not None else self.reference_power_w
        return np.maximum(curve * scale, 0.0)

    def predict_power_many(
        self,
        features: Sequence[FeatureVector],
        freqs_mhz: np.ndarray,
        *,
        target_power_scale_w: float | None = None,
    ) -> np.ndarray:
        """(n_features, n_freqs) watt matrix; rows match :meth:`predict_power`.

        Same TDP-rescaling contract as the single-curve path; the scale
        and clip are elementwise, so each row stays bitwise-identical to
        the sequential prediction.
        """
        curves = self.predict_curve_many(features, freqs_mhz)
        if self.reference_power_w is None:
            if target_power_scale_w is not None:
                raise ValueError(
                    "model trained on absolute watts; rebuild with reference_power_w "
                    "to rescale across architectures"
                )
            return np.maximum(curves, 0.0)
        scale = target_power_scale_w if target_power_scale_w is not None else self.reference_power_w
        return np.maximum(curves * scale, 0.0)


class TimeModel(_RegressionModel):
    """Predicts execution time (paper Eq. 6/7; 25 epochs).

    The regression target is the per-workload slowdown ``T(f)/T(f_max)``
    by default (``target="relative"``); absolute seconds are available
    for the ablation bench via ``target="absolute"``.
    """

    epochs = 25
    target_name = "execution_time"

    def __init__(self, *, target: str = "relative", **kwargs) -> None:
        if target not in ("relative", "absolute"):
            raise ValueError(f"target must be 'relative' or 'absolute', got {target!r}")
        super().__init__(**kwargs)
        self.target = target

    def _target(self, dataset: DVFSDataset) -> np.ndarray:
        return dataset.y_slowdown if self.target == "relative" else dataset.y_time

    def predict_time(
        self,
        features: FeatureVector,
        freqs_mhz: np.ndarray,
        *,
        time_at_max_s: float | None = None,
    ) -> np.ndarray:
        """Execution time in seconds across a clock grid.

        For the relative target, ``time_at_max_s`` (measured in the online
        phase) rescales slowdowns to seconds; it is required there and
        ignored for the absolute target.
        """
        curve = self.predict_curve(features, freqs_mhz)
        curve = np.maximum(curve, 1e-12)
        if self.target == "relative":
            if time_at_max_s is None:
                raise ValueError("time_at_max_s is required for the relative time target")
            return curve * float(time_at_max_s)
        return curve

    def predict_slowdown(self, features: FeatureVector, freqs_mhz: np.ndarray) -> np.ndarray:
        """Normalized execution time T(f)/T(f_max) (relative target only)."""
        if self.target != "relative":
            raise RuntimeError("slowdown prediction requires the relative target")
        return np.maximum(self.predict_curve(features, freqs_mhz), 1e-12)

    def predict_unit_time_many(
        self, features: Sequence[FeatureVector], freqs_mhz: np.ndarray
    ) -> np.ndarray:
        """(n_features, n_freqs) request-independent part of the time curve.

        For the relative target this is the clipped slowdown matrix; for
        the absolute target it is already seconds.  Composed with
        :meth:`time_from_unit` it reproduces :meth:`predict_time` bitwise —
        the decomposition exists so the serving layer can cache curves
        independently of each request's measured ``time_at_max_s``.
        """
        return np.maximum(self.predict_curve_many(features, freqs_mhz), 1e-12)

    def time_from_unit(self, unit_curve: np.ndarray, time_at_max_s: float | None) -> np.ndarray:
        """Seconds from a :meth:`predict_unit_time_many` row.

        Applies exactly the rescaling :meth:`predict_time` would, so
        ``time_from_unit(unit_row, t)`` is bitwise-identical to
        ``predict_time(features, freqs, time_at_max_s=t)``.
        """
        if self.target == "relative":
            if time_at_max_s is None:
                raise ValueError("time_at_max_s is required for the relative time target")
            return unit_curve * float(time_at_max_s)
        return unit_curve
