"""Table 4: optimal frequencies per method — shares Figure 9's data."""

from __future__ import annotations

from repro.experiments.context import ExperimentContext
from repro.experiments.evaluation import EvaluationSuite
from repro.experiments.fig9 import Fig9Result, render_fig9, run_fig9

__all__ = ["Tab4Result", "run_tab4", "render_tab4"]

#: Table 4 is the tabular form of Figure 9's annotations.
Tab4Result = Fig9Result


def run_tab4(ctx: ExperimentContext, *, suite: EvaluationSuite | None = None) -> Tab4Result:
    """Optimal frequencies for every app and method on GA100."""
    return run_fig9(ctx, suite=suite)


def render_tab4(result: Tab4Result) -> str:
    """Table 4 layout (same matrix as Figure 9's annotation table)."""
    return render_fig9(result).replace("Figure 9 / Table 4", "Table 4")
