#!/usr/bin/env python
"""Thin shim over ``repro report --gate`` for the serving trajectory.

The gate logic moved to :mod:`repro.obs.report` (PR 8): ``repro report
--gate`` checks *every* committed ``BENCH_*.json`` trajectory and is
what CI runs.  This script keeps the old single-file entry point (and
its exit-code contract: 0 ok, 1 regression, 2 unusable file) for local
use and any caller still pointing at it.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parent.parent
if str(_REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(_REPO_ROOT / "src"))

from repro.obs.report import evaluate_gate  # noqa: E402
from repro.obs.store import tracked_metrics  # noqa: E402


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "bench_file",
        nargs="?",
        default=_REPO_ROOT / "BENCH_serving.json",
        type=Path,
        help="path to BENCH_serving.json (default: repo root)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.10,
        help="allowed fractional drop below each scenario's best (default 0.10)",
    )
    args = parser.parse_args(argv)
    if not 0.0 <= args.tolerance < 1.0:
        print("--tolerance must be in [0, 1)", file=sys.stderr)
        return 2

    try:
        payload = json.loads(args.bench_file.read_text())
    except FileNotFoundError:
        print(f"{args.bench_file}: not found — run benchmarks/test_perf_serving.py", file=sys.stderr)
        return 2
    except json.JSONDecodeError as exc:
        print(f"{args.bench_file}: invalid JSON ({exc})", file=sys.stderr)
        return 2

    try:
        rows = tracked_metrics(payload)
    except ValueError as exc:
        print(f"bench gate: {exc}", file=sys.stderr)
        return 2
    failures = evaluate_gate(rows, tolerance=args.tolerance)
    if failures:
        for failure in failures:
            print(f"bench gate: {failure.message}", file=sys.stderr)
        return 1
    scenarios = sorted({row.metric.split(".")[0] for row in rows})
    print(
        f"bench gate: {len(rows)} scenarios within {100 * args.tolerance:.0f}% of "
        f"their best records ({', '.join(scenarios)})"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
