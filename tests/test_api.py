"""Public API surface tests: imports, __all__ hygiene, version."""

import importlib

import pytest

SUBPACKAGES = [
    "repro.gpusim",
    "repro.workloads",
    "repro.telemetry",
    "repro.nn",
    "repro.features",
    "repro.baselines",
    "repro.core",
    "repro.serving",
    "repro.cluster",
    "repro.experiments",
]


class TestImports:
    def test_top_level(self):
        import repro

        assert repro.__version__

    @pytest.mark.parametrize("name", SUBPACKAGES)
    def test_subpackage_imports(self, name):
        importlib.import_module(name)

    @pytest.mark.parametrize("name", SUBPACKAGES)
    def test_all_entries_resolve(self, name):
        """Everything in __all__ must actually exist on the module."""
        module = importlib.import_module(name)
        for entry in getattr(module, "__all__", []):
            assert hasattr(module, entry), f"{name}.{entry} missing"

    def test_no_duplicate_all_entries(self):
        for name in SUBPACKAGES:
            module = importlib.import_module(name)
            entries = getattr(module, "__all__", [])
            assert len(entries) == len(set(entries)), name


class TestDocstrings:
    @pytest.mark.parametrize("name", SUBPACKAGES)
    def test_subpackage_docstring(self, name):
        assert importlib.import_module(name).__doc__

    def test_every_public_symbol_documented(self):
        """Every class/function exported from core has a docstring."""
        import inspect

        import repro.core as core

        for entry in core.__all__:
            obj = getattr(core, entry)
            if inspect.isclass(obj) or inspect.isfunction(obj):
                assert obj.__doc__, f"repro.core.{entry} undocumented"
