"""Metrics primitives: semantics, percentiles, exporters, thread safety."""

from __future__ import annotations

import json
import threading

import numpy as np
import pytest

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS_S,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    registry_from_json,
)


class TestCounter:
    def test_accumulates(self):
        c = Counter("c")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter("c").inc(-1)

    def test_thread_safe(self):
        c = Counter("c")

        def worker():
            for _ in range(1000):
                c.inc()

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == 8000


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge("g")
        g.set(10)
        g.inc(5)
        g.dec(3)
        assert g.value == 12

    def test_set_max_is_high_water_mark(self):
        g = Gauge("g")
        g.set_max(4)
        g.set_max(2)
        g.set_max(9)
        assert g.value == 9


class TestHistogram:
    def test_count_sum_min_max(self):
        h = Histogram("h")
        for v in (0.001, 0.002, 0.5):
            h.observe(v)
        assert h.count == 3
        assert h.sum == pytest.approx(0.503)
        snap = h.snapshot()
        assert snap.min == 0.001
        assert snap.max == 0.5
        assert snap.mean == pytest.approx(0.503 / 3)

    def test_observe_many_matches_scalar_loop(self):
        rng = np.random.default_rng(0)
        values = rng.uniform(1e-6, 2.0, size=500)
        one = Histogram("a")
        many = Histogram("b")
        for v in values:
            one.observe(v)
        many.observe_many(values)
        a, b = one.snapshot(), many.snapshot()
        assert a.counts == b.counts
        assert a.count == b.count
        assert (a.min, a.max) == (b.min, b.max)
        # Sums differ only by float summation order (numpy is pairwise).
        assert a.sum == pytest.approx(b.sum, rel=1e-12)

    def test_overflow_bucket(self):
        h = Histogram("h", buckets=(1.0, 2.0))
        h.observe(100.0)
        snap = h.snapshot()
        assert snap.counts == (0, 0, 1)
        assert snap.percentile(50) == 100.0

    def test_percentile_tracks_numpy_within_bucket_resolution(self):
        rng = np.random.default_rng(1)
        values = rng.uniform(1e-5, 1.0, size=2000)
        h = Histogram("h")
        h.observe_many(values)
        snap = h.snapshot()
        for p in (50, 90, 99):
            exact = float(np.percentile(values, p))
            estimate = snap.percentile(p)
            # Bucket edges follow a 1-2.5-5 ladder, so the estimate can
            # be off by at most one bucket span (2.5x).
            assert exact / 2.6 <= estimate <= exact * 2.6

    def test_percentile_bounds(self):
        h = Histogram("h")
        assert h.percentile(50) == 0.0  # empty
        h.observe(0.42)
        assert h.snapshot().percentile(0) == pytest.approx(0.42)
        assert h.snapshot().percentile(100) == pytest.approx(0.42)
        with pytest.raises(ValueError):
            h.percentile(101)

    def test_rejects_bad_buckets(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=())
        with pytest.raises(ValueError):
            Histogram("h", buckets=(1.0, 1.0))


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        r = MetricsRegistry()
        assert r.counter("x") is r.counter("x")
        assert r.histogram("h") is r.histogram("h")

    def test_kind_conflict_raises(self):
        r = MetricsRegistry()
        r.counter("x")
        with pytest.raises(ValueError, match="already registered"):
            r.gauge("x")

    def test_names_sorted_and_contains(self):
        r = MetricsRegistry()
        r.counter("b")
        r.gauge("a")
        assert r.names() == ["a", "b"]
        assert "a" in r and "zzz" not in r

    def test_global_registry_is_a_singleton(self):
        assert get_registry() is get_registry()

    def test_json_round_trip_exact(self):
        r = MetricsRegistry()
        r.counter("req_total", "requests").inc(7)
        r.gauge("depth").set(3.5)
        h = r.histogram("lat_seconds", "latency", buckets=(0.01, 0.1, 1.0))
        h.observe_many(np.array([0.005, 0.05, 0.5, 5.0]))
        restored = registry_from_json(r.to_json())
        assert restored.to_json() == r.to_json()
        # The restored histogram keeps working (percentiles, more observes).
        restored.histogram("lat_seconds", buckets=(0.01, 0.1, 1.0)).observe(0.02)
        assert restored.get("lat_seconds").count == 5

    def test_json_rejects_unknown_schema(self):
        with pytest.raises(ValueError, match="schema"):
            registry_from_json(json.dumps({"schema": 99, "metrics": {}}))

    def test_prometheus_text_format(self):
        r = MetricsRegistry()
        r.counter("req_total", "requests served").inc(3)
        h = r.histogram("lat_seconds", buckets=(0.1, 1.0))
        h.observe(0.05)
        h.observe(5.0)
        text = r.to_prometheus_text()
        assert "# HELP req_total requests served" in text
        assert "# TYPE req_total counter" in text
        assert "req_total 3" in text
        assert 'lat_seconds_bucket{le="0.1"} 1' in text
        assert 'lat_seconds_bucket{le="+Inf"} 2' in text
        assert "lat_seconds_count 2" in text

    def test_default_buckets_cover_spans_to_campaigns(self):
        assert DEFAULT_LATENCY_BUCKETS_S[0] <= 1e-6
        assert DEFAULT_LATENCY_BUCKETS_S[-1] >= 10.0
        assert list(DEFAULT_LATENCY_BUCKETS_S) == sorted(DEFAULT_LATENCY_BUCKETS_S)
