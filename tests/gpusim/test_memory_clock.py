"""Memory-clock dimension tests (the control module's second axis)."""

import numpy as np
import pytest

from repro.gpusim import GA100, GV100, KernelCensus, NoiseModel, SimulatedGPU


@pytest.fixture()
def device():
    return SimulatedGPU(GA100, seed=0, noise=NoiseModel.disabled())


class TestClockStates:
    def test_default_is_table1_value(self, device):
        assert device.current_mem_clock == 1597.0
        assert device.mem_ratio == 1.0

    def test_memory_clocks_include_default(self):
        assert 1597.0 in GA100.memory_clocks
        assert 877.0 in GV100.memory_clocks

    def test_snap_to_supported_state(self, device):
        assert device.set_mem_clock(600.0) == 510.0
        assert device.set_mem_clock(1595.0) == 1593.0

    def test_reset_restores_memory_clock(self, device):
        device.set_mem_clock(510.0)
        device.reset_clocks()
        assert device.current_mem_clock == 1597.0

    def test_nonpositive_rejected(self, device):
        with pytest.raises(ValueError, match="freq_mhz"):
            device.set_mem_clock(0.0)


class TestPhysicalEffects:
    @pytest.fixture()
    def mem_census(self):
        return KernelCensus(flops_fp64=1e10, dram_bytes=5e11, memory_efficiency=0.85)

    def test_lower_mem_clock_slows_memory_bound_work(self, device, mem_census):
        t_full = device.true_time(mem_census, 1410.0, mem_ratio=1.0)
        t_half = device.true_time(mem_census, 1410.0, mem_ratio=0.5)
        assert t_half == pytest.approx(2.0 * t_full, rel=0.05)

    def test_compute_bound_work_unaffected(self, device):
        census = KernelCensus(flops_fp64=1e13, dram_bytes=1e9)
        t_full = device.true_time(census, 1410.0, mem_ratio=1.0)
        t_half = device.true_time(census, 1410.0, mem_ratio=0.5)
        assert t_half == pytest.approx(t_full, rel=0.02)

    def test_lower_mem_clock_cuts_idle_power(self, device):
        census = KernelCensus(flops_fp64=1e12, dram_bytes=1e9)
        p_full = device.true_power(census, 510.0, mem_ratio=1.0)
        p_low = device.true_power(census, 510.0, mem_ratio=0.32)
        assert p_low < p_full

    def test_run_uses_current_mem_clock(self, mem_census):
        device = SimulatedGPU(GA100, seed=0, noise=NoiseModel.disabled())
        full = device.run(mem_census).exec_time_s
        device.set_mem_clock(510.0)
        slow = device.run(mem_census).exec_time_s
        assert slow > 1.5 * full

    def test_bandwidth_knee_moves_with_mem_clock(self, device, mem_census):
        """At a reduced memory clock, a lower SM clock already saturates."""
        bw_low_sm = device.timing.memory_bandwidth(mem_census, 600.0, mem_ratio=0.5)
        bw_high_sm = device.timing.memory_bandwidth(mem_census, 1410.0, mem_ratio=0.5)
        assert bw_high_sm / bw_low_sm < 1.10

    def test_invalid_mem_ratio_rejected(self, device, mem_census):
        with pytest.raises(ValueError, match="mem_ratio"):
            device.timing.memory_bandwidth(mem_census, 1000.0, mem_ratio=0.0)
        with pytest.raises(ValueError, match="mem_ratio"):
            device.power.power(1000.0, fp_active=0.5, dram_active=0.5, sm_active=0.5, mem_ratio=-1.0)


class TestEnergyTradeoff:
    def test_mem_downclock_saves_energy_on_compute_bound(self, device):
        """Compute-bound work at reduced memory clock: same time, less power."""
        census = KernelCensus(flops_fp64=1e13, dram_bytes=1e9)
        e_full = device.true_energy(census, 1410.0, mem_ratio=1.0)
        e_low = device.true_energy(census, 1410.0, mem_ratio=0.32)
        assert e_low < e_full

    def test_mem_downclock_wastes_energy_on_memory_bound(self, device):
        """Memory-bound work: halved bandwidth doubles time, energy rises."""
        census = KernelCensus(flops_fp64=1e10, dram_bytes=5e11)
        e_full = device.true_energy(census, 1410.0, mem_ratio=1.0)
        e_low = device.true_energy(census, 1410.0, mem_ratio=0.32)
        assert e_low > e_full
