"""Golden guard: tracing must never perturb numerics or RNG draws.

The observability layer only reads clocks and copies values — it must be
invisible to the maths.  This test reruns the full tiny pipeline
(collect → train → select) with a tracer installed and requires the
payload to be *bitwise* identical to the untraced run from the session
fixture, and to still match the checked-in golden file.
"""

from __future__ import annotations

import json
import math

import pytest

from repro import obs

from tests.golden.test_golden import EXACT_FIELDS, FLOAT_FIELDS, FLOAT_RTOL
from tests.golden.tiny_pipeline import GOLDEN_PATH, golden_payload, train_tiny_models


@pytest.fixture(scope="module")
def traced_run():
    """Payload + trace from a fully traced end-to-end tiny pipeline."""
    tracer = obs.configure(ring_size=65536)
    try:
        payload = golden_payload(train_tiny_models())
        events = tracer.events()
    finally:
        obs.disable()
    return payload, events


def test_traced_payload_bitwise_equals_untraced(traced_run, tiny_models):
    payload, _ = traced_run
    untraced = golden_payload(tiny_models)
    # Dict equality on floats is bitwise — no tolerance anywhere.
    assert payload == untraced


def test_traced_payload_matches_golden_file(traced_run):
    payload, _ = traced_run
    golden = json.loads(GOLDEN_PATH.read_text())
    assert payload["config"] == golden["config"]
    for variant, apps in golden["results"].items():
        for app, objectives in apps.items():
            for objective, expected in objectives.items():
                got = payload["results"][variant][app][objective]
                for field in EXACT_FIELDS:
                    assert got[field] == expected[field], (
                        f"{variant}/{app}/{objective}/{field} drifted under tracing"
                    )
                for field in FLOAT_FIELDS:
                    assert math.isclose(
                        got[field], expected[field], rel_tol=FLOAT_RTOL, abs_tol=1e-12
                    ), f"{variant}/{app}/{objective}/{field} drifted under tracing"


def test_traced_run_actually_traced(traced_run):
    """The guard is vacuous unless the run emitted real spans."""
    _, events = traced_run
    names = {e["name"] for e in events}
    assert {
        "pipeline.fit_offline",
        "pipeline.collect",
        "nn.epoch",
        "pipeline.run_online",
        "pipeline.select",
        "telemetry.cell",
    } <= names
    assert len(events) > 50
