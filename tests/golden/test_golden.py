"""Golden regression test for the tiny end-to-end pipeline.

Pins the online-phase outputs (selected clock, index, threshold flag,
energy saving, perf degradation) of a fixed-seed collect → train →
select run.  Any drift in the simulator, dataset assembly, DNN training,
prediction, or Algorithm 1 shows up here as a precise diff.

If the change is intentional, regenerate with::

    PYTHONPATH=src:. python tests/golden/regenerate.py
"""

from __future__ import annotations

import json
import math

import pytest

from tests.golden.tiny_pipeline import GOLDEN_PATH, golden_payload

# Exact-match fields vs. float fields: discrete decisions must not move
# at all; derived percentages get a tight tolerance so the golden file
# stays portable across BLAS builds.
EXACT_FIELDS = ("freq_mhz", "index", "threshold_applied")
FLOAT_FIELDS = ("energy_saving", "perf_degradation")
FLOAT_RTOL = 1e-9


@pytest.fixture(scope="module")
def current(tiny_models):
    return golden_payload(tiny_models)


@pytest.fixture(scope="module")
def golden():
    assert GOLDEN_PATH.exists(), (
        f"missing {GOLDEN_PATH.name}; generate it with "
        "`PYTHONPATH=src:. python tests/golden/regenerate.py`"
    )
    return json.loads(GOLDEN_PATH.read_text())


def test_config_unchanged(golden, current):
    """A config drift means the golden file no longer tests what it says."""
    assert current["config"] == golden["config"]


def test_selections_match_golden(golden, current):
    mismatches = []
    for variant, apps in golden["results"].items():
        for app, objectives in apps.items():
            for objective, expected in objectives.items():
                got = current["results"][variant][app][objective]
                for field in EXACT_FIELDS:
                    if got[field] != expected[field]:
                        mismatches.append(
                            f"{variant}/{app}/{objective}/{field}: "
                            f"golden={expected[field]!r} current={got[field]!r}"
                        )
                for field in FLOAT_FIELDS:
                    if not math.isclose(
                        got[field], expected[field], rel_tol=FLOAT_RTOL, abs_tol=1e-12
                    ):
                        mismatches.append(
                            f"{variant}/{app}/{objective}/{field}: "
                            f"golden={expected[field]!r} current={got[field]!r}"
                        )
    assert not mismatches, "golden drift:\n" + "\n".join(mismatches)


def test_golden_covers_every_cell(golden, current):
    """The two payloads enumerate identical (variant, app, objective) cells."""

    def cells(payload):
        return {
            (variant, app, objective)
            for variant, apps in payload["results"].items()
            for app, objectives in apps.items()
            for objective in objectives
        }

    assert cells(current) == cells(golden)
    assert len(cells(golden)) > 0
