"""Dataset construction tests."""

import numpy as np
import pytest

from repro.core import FeatureVector, build_dataset, features_at_max
from repro.core.dataset import DVFSDataset, SweepSample
from repro.telemetry import LaunchConfig, Launcher
from repro.workloads import get_workload


@pytest.fixture()
def artifacts(ga100):
    launcher = Launcher(ga100)
    config = LaunchConfig(freqs_mhz=(600.0, 1005.0, 1410.0), runs_per_config=2)
    return launcher.collect([get_workload("stream"), get_workload("dgemm")], config)


class TestFeatureVector:
    def test_as_array_order(self):
        fv = FeatureVector(fp_active=0.8, dram_active=0.3, sm_app_clock=1200.0)
        assert np.array_equal(fv.as_array(), [0.8, 0.3, 1200.0])

    def test_at_clock_replicates_activities(self):
        fv = FeatureVector(0.8, 0.3, 1410.0)
        moved = fv.at_clock(600.0)
        assert moved.fp_active == 0.8
        assert moved.dram_active == 0.3
        assert moved.sm_app_clock == 600.0


class TestBuildDataset:
    def test_aggregate_row_count(self, artifacts):
        ds = build_dataset(artifacts)
        assert len(ds) == len(artifacts)

    def test_per_sample_rows_exceed_aggregate(self, artifacts):
        agg = build_dataset(artifacts)
        per = build_dataset(artifacts, per_sample=True)
        assert len(per) > len(agg)

    def test_slowdown_reference_is_unity_at_fmax(self, artifacts):
        ds = build_dataset(artifacts)
        at_max = [s for s in ds.samples if s.features.sm_app_clock == 1410.0]
        mean_slowdown = np.mean([s.slowdown for s in at_max if s.workload == "stream"])
        assert mean_slowdown == pytest.approx(1.0, rel=0.05)

    def test_slowdown_above_one_at_low_clock(self, artifacts):
        ds = build_dataset(artifacts)
        lows = [s.slowdown for s in ds.samples if s.features.sm_app_clock == 600.0]
        assert min(lows) > 1.0

    def test_missing_reference_clock_rejected(self, artifacts):
        partial = [a for a in artifacts if a.freq_mhz < 1400.0]
        with pytest.raises(ValueError, match="reference clock"):
            build_dataset(partial, max_freq_mhz=1410.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="no artifacts"):
            build_dataset([])

    def test_columns_consistent(self, artifacts):
        ds = build_dataset(artifacts)
        assert ds.x.shape == (len(ds), 3)
        assert ds.y_power.shape == (len(ds),)
        assert ds.y_time.shape == (len(ds),)
        assert ds.y_slowdown.shape == (len(ds),)

    def test_workload_names(self, artifacts):
        ds = build_dataset(artifacts)
        assert ds.workload_names == ["dgemm", "stream"]

    def test_for_workload_subset(self, artifacts):
        ds = build_dataset(artifacts)
        sub = ds.for_workload("stream")
        assert all(s.workload == "stream" for s in sub.samples)

    def test_for_unknown_workload_raises(self, artifacts):
        with pytest.raises(KeyError, match="nope"):
            build_dataset(artifacts).for_workload("nope")

    def test_mean_curve_ascending_freqs(self, artifacts):
        ds = build_dataset(artifacts).for_workload("dgemm")
        freqs, power = ds.mean_curve("power")
        assert np.array_equal(freqs, np.sort(freqs))
        assert power.shape == freqs.shape
        # Power increases with clock for a compute-bound workload.
        assert power[-1] > power[0]

    def test_empty_dataset_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            DVFSDataset([])


class TestFeaturesAtMax:
    def test_returns_fmax_clock(self, ga100):
        fv, power, time = features_at_max(ga100, get_workload("stream"))
        assert fv.sm_app_clock == 1410.0
        assert power > 0
        assert time > 0

    def test_device_clock_restored(self, ga100):
        ga100.set_sm_clock(600.0)
        features_at_max(ga100, get_workload("stream"))
        assert ga100.current_sm_clock == 1410.0

    def test_multiple_runs_average(self, ga100):
        fv1, p1, t1 = features_at_max(ga100, get_workload("stream"), runs=3)
        assert 0.0 <= fv1.fp_active <= 1.0
        assert 0.0 <= fv1.dram_active <= 1.0

    def test_size_override(self, ga100):
        _, _, t_small = features_at_max(ga100, get_workload("stream"), size=4096)
        _, _, t_big = features_at_max(ga100, get_workload("stream"))
        assert t_small < t_big
