#!/usr/bin/env python
"""Regenerate the fleet golden metrics files.

Run after an *intentional* change to the fleet simulator, the cluster
engine, the serving layer, or anything else on the campaign path::

    PYTHONPATH=src:. python scripts/regen_fleet_golden.py

then review the diff of ``tests/golden/golden_fleet_*.json`` — every
changed value is a behaviour change you are signing off on.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from tests.golden.fleet_scenarios import write_goldens  # noqa: E402


def main() -> None:
    for path in write_goldens():
        print(f"wrote {path}")


if __name__ == "__main__":
    main()
