"""Golden fleet-scenario configuration shared by tests and regeneration.

The golden suite pins the full fleet metrics dict of the ``baseline``
and ``capped`` scenarios at seed 0 — energy, SLA, EDP, capping and
serving counters — rendered with sorted keys so a rerun must match the
committed file *byte for byte*.  Any drift in the engine, the arrival
process, the seed lineage, the serving layer or the capping controller
shows up here as a precise diff.
"""

from __future__ import annotations

import json
from pathlib import Path

GOLDEN_SCENARIOS = ("baseline", "capped")
SEED = 0


def golden_path(name: str) -> Path:
    return Path(__file__).parent / f"golden_fleet_{name}.json"


def fleet_payload(name: str) -> dict:
    """The metrics dict of one golden scenario at the pinned seed."""
    from repro.fleet import FleetSimulator, get_scenario

    return FleetSimulator(get_scenario(name), seed=SEED).run().metrics()


def render(payload: dict) -> str:
    """Canonical byte-stable rendering of a metrics payload."""
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def write_goldens() -> list[Path]:
    """Write (or refresh) every committed fleet golden file."""
    paths = []
    for name in GOLDEN_SCENARIOS:
        path = golden_path(name)
        path.write_text(render(fleet_payload(name)))
        paths.append(path)
    return paths
