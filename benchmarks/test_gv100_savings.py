"""GV100 savings bench (the paper's '23.6% with <1% loss on GV100').

Shape assertions: portability delivers — P-ED2P saves energy on every
app on the Volta device using Ampere-trained weights, with small average
time losses and at least one near-free app.
"""

import pytest

from repro.experiments.gv100_savings import render_gv100_savings, run_gv100_savings


@pytest.fixture(scope="module")
def study(ctx, suite):
    return run_gv100_savings(ctx, suite=suite)


def test_gv100_report(benchmark, study, report):
    benchmark(render_gv100_savings, study)
    report("GV100 savings (portability)", render_gv100_savings(study))


def test_positive_savings_everywhere(study):
    for row in study.rows:
        assert row.energy_pct["P-ED2P"] > 0.0, row.app


def test_headline_saving_band(study):
    """Paper: up to 23.6% (our simulator runs ~1.8x hot on energy)."""
    assert study.best_saving("P-ED2P") > 25.0


def test_average_time_loss_single_digits(study):
    _, t_avg = study.average("P-ED2P")
    assert t_avg > -10.0


def test_at_least_one_nearly_free_app(study):
    """Paper: '<1% performance loss' for the best case."""
    assert any(row.time_pct["P-ED2P"] > -2.0 for row in study.rows)
