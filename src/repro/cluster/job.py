"""Jobs and their completion records."""

from __future__ import annotations

from dataclasses import dataclass

from repro.workloads.base import Workload

__all__ = ["Job", "JobRecord"]


@dataclass(frozen=True)
class Job:
    """One GPU job submitted to the cluster."""

    job_id: int
    workload: Workload
    #: Simulation time at which the job becomes runnable, seconds.
    arrival_s: float = 0.0
    #: Optional workload size override.
    size: int | None = None

    def __post_init__(self) -> None:
        if self.job_id < 0:
            raise ValueError("job_id must be non-negative")
        if self.arrival_s < 0:
            raise ValueError("arrival_s must be non-negative")


@dataclass(frozen=True)
class JobRecord:
    """Completion record of one scheduled job."""

    job_id: int
    workload: str
    node_id: int
    gpu_index: int
    #: Clock the policy applied for this job, MHz.
    clock_mhz: float
    arrival_s: float
    start_s: float
    end_s: float
    energy_j: float
    mean_power_w: float

    @property
    def duration_s(self) -> float:
        """Execution time on the GPU."""
        return self.end_s - self.start_s

    @property
    def wait_s(self) -> float:
        """Queue wait before the job started."""
        return self.start_s - self.arrival_s
