"""Reproduction of "Performance-Aware Energy-Efficient GPU Frequency
Selection using DNN-based Models" (Ali et al., ICPP 2023).

Subpackages
-----------
``repro.gpusim``
    Analytical GPU DVFS simulator (the A100/V100 stand-in).
``repro.workloads``
    The 21 training benchmarks and 6 real evaluation applications.
``repro.telemetry``
    DCGM-style data-collection framework (launch/control/profile).
``repro.nn``
    From-scratch NumPy feedforward-network framework.
``repro.features``
    Mutual-information feature selection and scalers.
``repro.baselines``
    RFR / XGBR / SVR / MLR baseline learners.
``repro.core``
    The paper's contribution: power/time DNNs, energy objectives,
    Algorithm 1, and the offline/online pipeline.
``repro.experiments``
    One module per paper figure/table, plus ablations.

The one-screen usage pattern lives in ``examples/quickstart.py``; the
benchmark harness under ``benchmarks/`` regenerates every figure and
table in the paper's evaluation.
"""

__version__ = "1.0.0"

__all__ = [
    "gpusim",
    "workloads",
    "telemetry",
    "nn",
    "features",
    "baselines",
    "core",
    "experiments",
]
