"""Event-queue cluster engine with a tick loop.

The engine generalises the original upfront-greedy FIFO placement into
a discrete-event simulation: arrivals, completions, node outages and
periodic ticks are all entries in one time-ordered event heap, and
placement happens at event times onto the earliest-free board.  For a
plain FIFO campaign (no failures, no admission control) the placement
sequence — and therefore every per-board RNG stream and every record —
is identical to the historical :class:`~repro.cluster.scheduler.FIFOScheduler`.

On top of that base the engine adds the hooks the fleet layer needs:

* **admission control** — an :class:`AdmissionControl` may lower a
  job's clock or defer it entirely (facility power capping),
* **failure injection** — :class:`NodeOutage` windows kill a node
  mid-campaign; in-flight attempts are aborted (their partial energy is
  accounted as ``wasted_energy_j``) and their jobs requeued,
* **tick loop** — an optional fixed-period tick drives time-based
  callbacks (fleet power sampling, queue depth metrics).

Determinism: the engine itself draws no random numbers.  All stochastic
state lives in the per-board device RNGs (seeded by the node's
SeedSequence lineage) and in whatever process generated the job list,
so equal inputs give bitwise-equal outputs.  Internal heaps are keyed
by ``node_id`` — never by list position — so results are invariant to
the iteration order of the ``nodes`` argument.
"""

from __future__ import annotations

import heapq
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from time import perf_counter
from typing import Callable

from repro import obs
from repro.cluster.job import Job, JobRecord
from repro.cluster.node import GPUNode
from repro.cluster.policy import ClockDecision, ClockPolicy

__all__ = [
    "AdmissionControl",
    "ClusterEngine",
    "EngineResult",
    "EngineStats",
    "NodeOutage",
    "TickView",
]

# Event kind priorities: events sharing a timestamp are processed in
# this order (finishes free boards before a node drops; a node drops
# before it returns; arrivals land last so same-instant completions are
# already visible; ticks observe the settled state).
_FINISH = 0
_DOWN = 1
_UP = 2
_ARRIVAL = 3
_TICK = 4


@dataclass(frozen=True)
class NodeOutage:
    """One node-loss window: down at ``down_s``, back at ``up_s``.

    ``up_s`` of None means the node never returns.
    """

    node_id: int
    down_s: float
    up_s: float | None = None

    def __post_init__(self) -> None:
        if self.down_s < 0:
            raise ValueError("down_s must be non-negative")
        if self.up_s is not None and self.up_s <= self.down_s:
            raise ValueError("up_s must be after down_s")


class AdmissionControl(ABC):
    """Gate applied between the clock policy and placement.

    ``admit`` may return the decision unchanged, a re-pinned (slower)
    decision, or None to defer the job until capacity frees up.  The
    engine reports starts and finishes so the controller can track the
    power it has committed.
    """

    @abstractmethod
    def admit(self, now_s: float, job: Job, decision: ClockDecision) -> ClockDecision | None:
        """Decision to place with, or None to defer the job."""

    def on_start(self, now_s: float, job: Job, decision: ClockDecision) -> None:
        """Job placed with ``decision`` at ``now_s``."""

    def on_finish(self, now_s: float, job: Job, decision: ClockDecision) -> None:
        """Job (or aborted attempt) released its reservation."""


@dataclass
class _Attempt:
    """One placement attempt of a job on a board."""

    job: Job
    node_id: int
    gpu_index: int
    decision: ClockDecision
    start_s: float
    end_s: float
    energy_j: float
    mean_power_w: float
    aborted: bool = False


@dataclass
class _NodeState:
    node: GPUNode
    alive: bool = True
    #: Bumped on every down/up transition; idle-board heap entries from
    #: older epochs are stale and dropped lazily.
    epoch: int = 0


@dataclass(frozen=True)
class TickView:
    """Snapshot handed to the tick callback."""

    now_s: float
    running: int
    pending: int
    #: Instantaneous busy power of all in-flight attempts (W).
    busy_power_w: float
    nodes_alive: int


@dataclass
class EngineStats:
    """Bookkeeping beyond the job records."""

    jobs_submitted: int = 0
    jobs_completed: int = 0
    #: Placement attempts killed by node failures.
    aborted_attempts: int = 0
    #: Jobs pushed back to the queue after a failure (= aborted attempts).
    requeues: int = 0
    #: Admission-control deferrals (a job can defer many times).
    deferrals: int = 0
    #: Energy burnt by aborted attempts (J); NOT included in any record,
    #: so sum(record energies) stays the exact useful-work energy.
    wasted_energy_j: float = 0.0
    ticks: int = 0
    sim_end_s: float = 0.0


@dataclass
class EngineResult:
    """Completed campaign: records in completion order plus stats."""

    records: list[JobRecord] = field(default_factory=list)
    stats: EngineStats = field(default_factory=EngineStats)


class ClusterEngine:
    """Discrete-event scheduler over a set of multi-GPU nodes."""

    def __init__(
        self,
        nodes: list[GPUNode],
        policy: ClockPolicy,
        *,
        admission: AdmissionControl | None = None,
        outages: tuple[NodeOutage, ...] | list[NodeOutage] = (),
        tick_s: float | None = None,
        on_tick: Callable[[TickView], None] | None = None,
        max_backfill: int = 32,
    ) -> None:
        if not nodes:
            raise ValueError("need at least one node")
        if tick_s is not None and tick_s <= 0:
            raise ValueError("tick_s must be positive")
        if max_backfill < 1:
            raise ValueError("max_backfill must be >= 1")
        self._states: dict[int, _NodeState] = {}
        for node in nodes:
            if node.node_id in self._states:
                raise ValueError(f"duplicate node_id {node.node_id}")
            self._states[node.node_id] = _NodeState(node)
        for outage in outages:
            if outage.node_id not in self._states:
                raise ValueError(f"outage for unknown node_id {outage.node_id}")
        self.policy = policy
        self.admission = admission
        self.outages = tuple(outages)
        self.tick_s = tick_s
        self.on_tick = on_tick
        self.max_backfill = max_backfill
        registry = obs.get_registry()
        self._m_jobs = registry.counter("cluster_jobs_total", "jobs scheduled")
        self._m_decide = registry.histogram(
            "cluster_decide_seconds", "per-job clock-policy decision latency"
        )

    # -- run -----------------------------------------------------------

    def run(self, jobs: list[Job]) -> EngineResult:
        """Simulate the campaign; returns records and stats.

        Records are sorted by (end_s, job_id).  Each submitted job
        yields exactly one record (its successful attempt); energy of
        failure-aborted attempts is tracked in ``stats.wasted_energy_j``.
        """
        result = EngineResult()
        result.stats.jobs_submitted = len(jobs)
        if not jobs and not self.tick_s:
            return result

        # Event heap entries: (time_s, priority, seq, payload).
        self._events: list[tuple[float, int, int, object]] = []
        self._seq = 0
        #: Non-tick events outstanding (arrivals/finishes/outages).
        self._real_events = 0
        # Pending (arrived, unplaced) jobs in FIFO order.
        self._pending: list[tuple[float, int, Job]] = []
        # Idle boards: (free_at_s, node_id, gpu_index, epoch).
        self._idle: list[tuple[float, int, int, int]] = []
        self._running: dict[int, _Attempt] = {}
        self._attempt_seq = 0
        self._attempts_of: dict[int, int] = {}
        # Policy decisions of deferred jobs, kept per architecture so an
        # admission-control retry does not re-run model inference every
        # event round.  Dropped when the job is placed, so a
        # failure-requeued job is decided afresh on its next attempt.
        self._decision_cache: dict[int, dict[str, ClockDecision]] = {}

        for state in self._states.values():
            state.alive = True
            state.epoch = 0
            for g in range(len(state.node)):
                heapq.heappush(self._idle, (0.0, state.node.node_id, g, 0))

        ordered = sorted(jobs, key=lambda j: (j.arrival_s, j.job_id))
        with obs.span("cluster.prepare", jobs=len(ordered), policy=self.policy.name):
            self.policy.prepare(ordered)
        for job in ordered:
            self._push_event(job.arrival_s, _ARRIVAL, job)
        for outage in self.outages:
            self._push_event(outage.down_s, _DOWN, outage)
            if outage.up_s is not None:
                self._push_event(outage.up_s, _UP, outage)
        if self.tick_s is not None:
            self._push_event(0.0, _TICK, None)

        while self._events:
            now = self._events[0][0]
            # Drain every event sharing this timestamp before placing,
            # so simultaneous completions compete fairly for the queue.
            while self._events and self._events[0][0] <= now:
                _, prio, _, payload = heapq.heappop(self._events)
                if prio != _TICK:
                    self._real_events -= 1
                if prio == _FINISH:
                    self._on_finish(now, payload, result)
                elif prio == _DOWN:
                    self._on_down(now, payload, result)
                elif prio == _UP:
                    self._on_up(now, payload)
                elif prio == _ARRIVAL:
                    heapq.heappush(self._pending, (payload.arrival_s, payload.job_id, payload))
                else:
                    self._on_tick(now, result)
            self._place(now, result)
            if self._pending and not self._running and self._real_events == 0:
                raise RuntimeError(
                    f"engine stalled at t={now:.3f}s with {len(self._pending)} "
                    "pending jobs and no capacity coming back"
                )
            result.stats.sim_end_s = max(result.stats.sim_end_s, now)

        if self._pending:
            raise RuntimeError(f"{len(self._pending)} jobs never placed")
        result.records.sort(key=lambda r: (r.end_s, r.job_id))
        result.stats.jobs_completed = len(result.records)
        return result

    # -- event handlers ------------------------------------------------

    def _push_event(self, time_s: float, prio: int, payload: object) -> None:
        heapq.heappush(self._events, (time_s, prio, self._seq, payload))
        self._seq += 1
        if prio != _TICK:
            self._real_events += 1

    def _on_finish(self, now: float, attempt_id: int, result: EngineResult) -> None:
        attempt = self._running.get(attempt_id)
        if attempt is None or attempt.aborted:
            return
        del self._running[attempt_id]
        job = attempt.job
        state = self._states[attempt.node_id]
        heapq.heappush(self._idle, (now, attempt.node_id, attempt.gpu_index, state.epoch))
        if self.admission is not None:
            self.admission.on_finish(now, job, attempt.decision)
        result.records.append(
            JobRecord(
                job_id=job.job_id,
                workload=job.workload.name,
                node_id=attempt.node_id,
                gpu_index=attempt.gpu_index,
                clock_mhz=attempt.decision.clock_mhz,
                arrival_s=job.arrival_s,
                start_s=attempt.start_s,
                end_s=attempt.end_s,
                energy_j=attempt.energy_j,
                mean_power_w=attempt.mean_power_w,
                attempts=self._attempts_of.get(job.job_id, 1),
                deadline_s=job.deadline_s,
            )
        )

    def _on_down(self, now: float, outage: NodeOutage, result: EngineResult) -> None:
        state = self._states[outage.node_id]
        if not state.alive:
            return
        state.alive = False
        state.epoch += 1
        # Abort in-flight attempts on this node and requeue their jobs
        # at their ORIGINAL arrival time — a disrupted job keeps its
        # queue seniority, and its SLA keeps hurting.
        for attempt_id in sorted(self._running):
            attempt = self._running[attempt_id]
            if attempt.node_id != outage.node_id or attempt.aborted:
                continue
            attempt.aborted = True
            del self._running[attempt_id]
            burnt = attempt.mean_power_w * max(0.0, now - attempt.start_s)
            result.stats.wasted_energy_j += min(burnt, attempt.energy_j)
            result.stats.aborted_attempts += 1
            result.stats.requeues += 1
            job = attempt.job
            self._attempts_of[job.job_id] = self._attempts_of.get(job.job_id, 1) + 1
            heapq.heappush(self._pending, (job.arrival_s, job.job_id, job))
            if self.admission is not None:
                self.admission.on_finish(now, job, attempt.decision)

    def _on_up(self, now: float, outage: NodeOutage) -> None:
        state = self._states[outage.node_id]
        if state.alive:
            return
        state.alive = True
        state.epoch += 1
        for g in range(len(state.node)):
            heapq.heappush(self._idle, (now, outage.node_id, g, state.epoch))

    def _on_tick(self, now: float, result: EngineResult) -> None:
        result.stats.ticks += 1
        if self.on_tick is not None:
            self.on_tick(
                TickView(
                    now_s=now,
                    running=len(self._running),
                    pending=len(self._pending),
                    busy_power_w=sum(a.mean_power_w for a in self._running.values()),
                    nodes_alive=sum(1 for s in self._states.values() if s.alive),
                )
            )
        # Keep ticking while anything can still happen; otherwise let
        # the heap drain so the run terminates.
        if self._running or self._real_events > 0 or self._pending:
            self._push_event(now + self.tick_s, _TICK, None)

    # -- placement -----------------------------------------------------

    def _next_idle(self) -> tuple[float, int, int] | None:
        """Valid earliest-free idle board, dropping stale heap entries."""
        while self._idle:
            free_at, node_id, gpu_idx, epoch = self._idle[0]
            state = self._states[node_id]
            if not state.alive or epoch != state.epoch:
                heapq.heappop(self._idle)
                continue
            return free_at, node_id, gpu_idx
        return None

    def _place(self, now: float, result: EngineResult) -> None:
        """FIFO placement of pending jobs onto idle boards at ``now``.

        With admission control a deferred head does not block the whole
        queue: up to ``max_backfill`` later jobs are considered before
        the round ends (deferred jobs keep their queue position).
        """
        deferred: list[tuple[float, int, Job]] = []
        while self._pending and len(deferred) < self.max_backfill:
            board = self._next_idle()
            if board is None:
                break
            _, node_id, gpu_idx = board
            entry = heapq.heappop(self._pending)
            job = entry[2]
            device = self._states[node_id].node.gpu(gpu_idx)

            arch_key = device.arch.name
            cached = self._decision_cache.get(job.job_id, {})
            decision = cached.get(arch_key)
            if decision is None:
                t_decide = perf_counter()
                with obs.span(
                    "cluster.decide", job=job.job_id, workload=job.workload.name
                ) as decide_span:
                    decision = self.policy.decide(job, device)
                    decide_span.set(clock_mhz=decision.clock_mhz, arch=arch_key)
                self._m_decide.observe(perf_counter() - t_decide)

            if self.admission is not None:
                admitted = self.admission.admit(now, job, decision)
                if admitted is None:
                    result.stats.deferrals += 1
                    self._decision_cache.setdefault(job.job_id, {})[arch_key] = decision
                    deferred.append(entry)
                    continue
                decision = admitted

            self._decision_cache.pop(job.job_id, None)
            clock = device.dvfs.snap(decision.clock_mhz)
            heapq.heappop(self._idle)
            with obs.span(
                "cluster.place",
                job=job.job_id,
                node=node_id,
                gpu=gpu_idx,
                clock_mhz=clock,
            ):
                device.set_sm_clock(clock)
                run = device.run(job.workload.census(job.size), workload_name=job.workload.name)
                device.reset_clocks()
            self._m_jobs.inc()

            decision = ClockDecision(
                clock_mhz=clock,
                freqs_mhz=decision.freqs_mhz,
                power_curve_w=decision.power_curve_w,
                time_curve_s=decision.time_curve_s,
                predicted_power_w=decision.predicted_power_w,
                predicted_time_s=decision.predicted_time_s,
                capped=decision.capped,
            )
            attempt = _Attempt(
                job=job,
                node_id=node_id,
                gpu_index=gpu_idx,
                decision=decision,
                start_s=now,
                end_s=now + run.exec_time_s,
                energy_j=run.energy_j,
                mean_power_w=run.mean_power_w,
            )
            self._running[self._attempt_seq] = attempt
            self._push_event(attempt.end_s, _FINISH, self._attempt_seq)
            self._attempt_seq += 1
            if self.admission is not None:
                self.admission.on_start(now, job, decision)
        for entry in deferred:
            heapq.heappush(self._pending, entry)
