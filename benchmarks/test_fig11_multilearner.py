"""Figure 11: DNN vs RFR/XGBR/SVR/MLR power-prediction accuracy.

Shape assertions (paper Section 7): the DNN outperforms the multi-learner
baselines on unseen applications — strictly above MLR, SVR, and RFR, and
at least competitive with the strongest tree ensemble.
"""

import pytest

from repro.experiments.fig11 import render_fig11, run_fig11


@pytest.fixture(scope="module")
def fig11(ctx, suite):
    return run_fig11(ctx, suite=suite)


def test_fig11_report(benchmark, fig11, report):
    benchmark(render_fig11, fig11)
    report("Figure 11 - multi-learner comparison", render_fig11(fig11))


def test_fig11_dnn_beats_weak_learners(fig11):
    dnn = fig11.score("DNN").mean_accuracy
    assert dnn > fig11.score("MLR").mean_accuracy
    assert dnn > fig11.score("SVR").mean_accuracy
    assert dnn > fig11.score("RFR").mean_accuracy


def test_fig11_dnn_competitive_with_gbm(fig11):
    assert fig11.score("DNN").mean_accuracy > fig11.score("XGBR").mean_accuracy - 4.0


def test_fig11_dnn_accuracy_absolute_floor(fig11):
    assert fig11.score("DNN").mean_accuracy > 88.0


def test_fig11_baseline_training_cost(benchmark, ctx):
    """Time the full multi-learner training sweep (the 'plethora of
    individual learners' inefficiency the paper cites)."""
    from repro.baselines import RandomForestRegressor

    dataset = ctx.pipeline("GA100").training_dataset
    x, y = dataset.x, dataset.y_power
    benchmark.pedantic(
        lambda: RandomForestRegressor(n_estimators=30, max_depth=12, seed=0).fit(x[:4000], y[:4000]),
        rounds=1,
        iterations=1,
    )
