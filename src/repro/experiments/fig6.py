"""Figure 6: training/validation loss of the power and time models.

Returns the per-epoch loss histories of both DNNs as trained by the
shared context: 100 epochs for power, 25 for time (paper Section 4.3).
Expected shape: both losses fall steeply and the validation curve tracks
the training curve without divergence at the chosen epoch counts.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.context import ExperimentContext
from repro.experiments.report import render_series
from repro.nn.training import History

__all__ = ["Fig6Result", "run_fig6", "render_fig6"]


@dataclass(frozen=True)
class Fig6Result:
    """Loss histories for both models."""

    power_history: History
    time_history: History


def run_fig6(ctx: ExperimentContext) -> Fig6Result:
    """Train (via the shared context) and return both loss histories."""
    pipe = ctx.pipeline("GA100")
    power_history = pipe.power_model.history
    time_history = pipe.time_model.history
    if power_history is None or time_history is None:
        raise RuntimeError("pipeline trained without recorded histories")
    return Fig6Result(power_history=power_history, time_history=time_history)


def render_fig6(result: Fig6Result) -> str:
    """Loss curves as series, Fig. 6 style."""
    p, t = result.power_history, result.time_history
    epochs_p = np.arange(1, p.epochs_run + 1)
    epochs_t = np.arange(1, t.epochs_run + 1)
    return "\n".join(
        [
            "Figure 6 - model training and validation loss (MSE, standardised targets)",
            render_series("(a) power train", epochs_p, np.asarray(p.train_loss), every=10),
            render_series("(a) power val", epochs_p, np.asarray(p.val_loss), every=10),
            render_series("(b) time train", epochs_t, np.asarray(t.train_loss), every=3),
            render_series("(b) time val", epochs_t, np.asarray(t.val_loss), every=3),
            f"power: {p.epochs_run} epochs, final val {p.val_loss[-1]:.5f}",
            f"time: {t.epochs_run} epochs, final val {t.val_loss[-1]:.5f}",
        ]
    )
