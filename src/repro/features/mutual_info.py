"""Kraskov-Stögbauer-Grassberger k-NN mutual information estimator.

Implements KSG estimator #1 for two continuous variables (Kraskov et al.
2004, Phys. Rev. E 69, 066138 — the paper's reference [22]):

``I(X; Y) = psi(k) + psi(N) - < psi(n_x + 1) + psi(n_y + 1) >``

where, for each sample, ``eps`` is the Chebyshev distance to its k-th
neighbour in the joint (X, Y) space and ``n_x`` / ``n_y`` count marginal
neighbours strictly within ``eps``.

Matching scikit-learn's practical estimator (the paper used scikit-learn,
reference [32]): inputs are standardised and perturbed with tiny seeded
noise so repeated values (e.g. the discrete ``sm_app_clock`` grid) do not
collapse neighbourhoods, and negative estimates are clipped to zero.
"""

from __future__ import annotations

import numpy as np
from scipy.spatial import cKDTree
from scipy.special import digamma

__all__ = ["mutual_information", "mutual_information_matrix"]


def _prepare(v: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    v = np.asarray(v, dtype=float).reshape(-1)
    std = v.std()
    if std > 0:
        v = (v - v.mean()) / std
    # Tiny noise breaks ties between identical samples (sklearn does the
    # same); scaled well below any real signal.
    return v + 1e-10 * rng.standard_normal(v.size)


def mutual_information(
    x: np.ndarray,
    y: np.ndarray,
    *,
    k: int = 3,
    seed: int = 0,
) -> float:
    """KSG-1 mutual information estimate (nats, clipped at zero).

    Parameters
    ----------
    x, y:
        1-D samples of equal length (>= k + 2 points).
    k:
        Neighbour count; 3 is the scikit-learn default the paper used.
    seed:
        Seed for the tie-breaking noise, making estimates reproducible.
    """
    x = np.asarray(x, dtype=float).reshape(-1)
    y = np.asarray(y, dtype=float).reshape(-1)
    if x.size != y.size:
        raise ValueError(f"x and y must have equal length, got {x.size} and {y.size}")
    n = x.size
    if k < 1:
        raise ValueError("k must be >= 1")
    if n < k + 2:
        raise ValueError(f"need at least k + 2 = {k + 2} samples, got {n}")

    rng = np.random.default_rng(seed)
    xs = _prepare(x, rng)
    ys = _prepare(y, rng)

    joint = np.column_stack([xs, ys])
    tree_joint = cKDTree(joint)
    # Distance to the k-th neighbour (excluding self) in Chebyshev norm.
    eps = tree_joint.query(joint, k=k + 1, p=np.inf)[0][:, -1]

    tree_x = cKDTree(xs[:, None])
    tree_y = cKDTree(ys[:, None])
    # Strictly-within counts; query_ball_point includes self, subtract it.
    nx = np.array(
        tree_x.query_ball_point(xs[:, None], r=np.nextafter(eps, 0), p=np.inf, return_length=True)
    ) - 1
    ny = np.array(
        tree_y.query_ball_point(ys[:, None], r=np.nextafter(eps, 0), p=np.inf, return_length=True)
    ) - 1

    mi = digamma(k) + digamma(n) - np.mean(digamma(nx + 1) + digamma(ny + 1))
    return float(max(mi, 0.0))


def mutual_information_matrix(
    features: np.ndarray,
    targets: np.ndarray,
    *,
    k: int = 3,
    seed: int = 0,
) -> np.ndarray:
    """MI of every feature column against every target column.

    Returns an array of shape (n_features, n_targets) — the data behind
    paper Fig. 3's per-predictand bars.
    """
    features = np.atleast_2d(np.asarray(features, dtype=float))
    targets = np.asarray(targets, dtype=float)
    if targets.ndim == 1:
        targets = targets[:, None]
    if features.shape[0] != targets.shape[0]:
        raise ValueError(
            f"features and targets disagree on sample count: {features.shape[0]} vs {targets.shape[0]}"
        )
    out = np.empty((features.shape[1], targets.shape[1]))
    for i in range(features.shape[1]):
        for j in range(targets.shape[1]):
            out[i, j] = mutual_information(features[:, i], targets[:, j], k=k, seed=seed)
    return out
