"""GPU architecture specifications (paper Table 1).

The two architectures evaluated in the paper are modelled here with the
exact figures from Table 1.  Quantities Table 1 does not list (peak FLOP
rates, PCIe bandwidth, voltage envelope, idle power fraction) are filled in
from the public NVIDIA datasheets and are only used to *shape* the simulated
curves, never to claim absolute fidelity.

Frequencies are handled in MHz throughout the simulator, matching both the
paper's plots and DCGM's ``sm_app_clock`` field.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

__all__ = [
    "GPUArchitecture",
    "GA100",
    "GV100",
    "register_architecture",
    "get_architecture",
    "list_architectures",
]


@dataclass(frozen=True)
class GPUArchitecture:
    """Immutable description of a GPU model's DVFS-relevant envelope.

    Parameters mirror paper Table 1 plus the physical constants the
    analytical power/timing models need.
    """

    name: str
    #: Inclusive supported core-clock range in MHz (Table 1 row 1).
    core_freq_min_mhz: float
    core_freq_max_mhz: float
    #: Clock step between adjacent DVFS states, MHz.
    core_freq_step_mhz: float
    #: Default (boost) core clock, MHz (Table 1 row 2).
    default_core_freq_mhz: float
    #: Lowest clock actually *used* in the paper's design space; lower
    #: clocks are excluded because of "heavy performance degradation" (S2).
    usable_freq_min_mhz: float
    #: Default memory clock, MHz (Table 1 row 4).
    memory_freq_mhz: float
    #: HBM2e capacity in GiB (Table 1 row 5).
    memory_gib: float
    #: Peak DRAM bandwidth, bytes/s (Table 1 row 6, converted from GB/s).
    peak_memory_bandwidth: float
    #: Thermal design power, watts (Table 1 row 7).
    tdp_watts: float
    #: Peak dense FP64 / FP32 throughput at the maximum clock, FLOP/s.
    peak_flops_fp64: float
    peak_flops_fp32: float
    #: Host link (PCIe/NVLink) bandwidth, bytes/s, frequency-insensitive.
    pcie_bandwidth: float
    #: Idle (static + uncore + fixed memory clock) power as fraction of TDP.
    idle_power_fraction: float = 0.10
    #: Core voltage envelope, volts.
    voltage_min: float = 0.70
    voltage_max: float = 1.05
    #: Clock (fraction of max) below which voltage sits at the floor.  The
    #: energy-vs-frequency minimum of a compute-bound kernel lands at this
    #: knee (see repro.gpusim.timing), so it is placed to reproduce the
    #: ~1080 MHz DGEMM energy optimum of paper Fig. 1 (c).
    voltage_knee_fraction: float = 0.76
    #: Clock (fraction of max) where DRAM bandwidth saturates (Fig. 1 (h)).
    bandwidth_knee_fraction: float = 0.64
    #: Number of streaming multiprocessors (used for occupancy accounting).
    num_sms: int = 108
    #: Memory clocks the driver accepts, MHz.  Datacenter GPUs expose the
    #: performance clock plus deep idle states; the paper's control module
    #: "applies the desired operating frequency to the GPU cores and
    #: memory", so the simulator models both axes.  Empty tuple means
    #: "default clock only".
    supported_memory_clocks_mhz: tuple[float, ...] = ()
    #: Share of idle power attributable to the memory subsystem at the
    #: default memory clock (scales with the applied memory clock).
    memory_idle_power_share: float = 0.35

    def __post_init__(self) -> None:
        if self.core_freq_min_mhz >= self.core_freq_max_mhz:
            raise ValueError(
                f"{self.name}: core_freq_min_mhz ({self.core_freq_min_mhz}) must be "
                f"< core_freq_max_mhz ({self.core_freq_max_mhz})"
            )
        if self.core_freq_step_mhz <= 0:
            raise ValueError(f"{self.name}: core_freq_step_mhz must be positive")
        if not (self.core_freq_min_mhz <= self.usable_freq_min_mhz <= self.core_freq_max_mhz):
            raise ValueError(f"{self.name}: usable_freq_min_mhz outside supported range")
        if not (self.core_freq_min_mhz <= self.default_core_freq_mhz <= self.core_freq_max_mhz):
            raise ValueError(f"{self.name}: default_core_freq_mhz outside supported range")
        if self.tdp_watts <= 0:
            raise ValueError(f"{self.name}: tdp_watts must be positive")
        if not 0.0 <= self.idle_power_fraction < 1.0:
            raise ValueError(f"{self.name}: idle_power_fraction must be in [0, 1)")
        if self.voltage_min >= self.voltage_max:
            raise ValueError(f"{self.name}: voltage_min must be < voltage_max")
        if not 0.0 <= self.memory_idle_power_share <= 1.0:
            raise ValueError(f"{self.name}: memory_idle_power_share must be in [0, 1]")
        for clk in self.supported_memory_clocks_mhz:
            if clk <= 0:
                raise ValueError(f"{self.name}: memory clocks must be positive")

    @property
    def memory_clocks(self) -> tuple[float, ...]:
        """All acceptable memory clocks (always includes the default)."""
        clocks = set(self.supported_memory_clocks_mhz)
        clocks.add(self.memory_freq_mhz)
        return tuple(sorted(clocks))

    @property
    def idle_power_watts(self) -> float:
        """Idle power in watts (static + uncore)."""
        return self.idle_power_fraction * self.tdp_watts

    def with_overrides(self, **kwargs: object) -> "GPUArchitecture":
        """Return a copy with the given fields replaced (for what-if studies)."""
        return replace(self, **kwargs)  # type: ignore[arg-type]


#: NVIDIA A100 80 GB (GA100) — paper Table 1, column 1.
#: 81 supported configs at a 15 MHz step in [210, 1410]; the paper uses the
#: 61 configs in [510, 1410].
GA100 = GPUArchitecture(
    name="GA100",
    core_freq_min_mhz=210.0,
    core_freq_max_mhz=1410.0,
    core_freq_step_mhz=15.0,
    default_core_freq_mhz=1410.0,
    usable_freq_min_mhz=510.0,
    memory_freq_mhz=1597.0,
    memory_gib=80.0,
    peak_memory_bandwidth=2039e9,
    tdp_watts=500.0,
    peak_flops_fp64=19.5e12,  # FP64 tensor core (DGEMM path)
    peak_flops_fp32=19.5e12,
    pcie_bandwidth=25e9,  # PCIe gen4 x16 effective
    num_sms=108,
    # P0 performance clock plus the deep idle state the driver exposes.
    supported_memory_clocks_mhz=(510.0, 1593.0, 1597.0),
)

#: NVIDIA V100 (GV100) — paper Table 1, column 2.
#: 167 supported configs at a 7.5 MHz step in [135, 1380]; the paper uses
#: the 117 configs in [510, 1380].
GV100 = GPUArchitecture(
    name="GV100",
    core_freq_min_mhz=135.0,
    core_freq_max_mhz=1380.0,
    core_freq_step_mhz=7.5,
    default_core_freq_mhz=1380.0,
    usable_freq_min_mhz=510.0,
    memory_freq_mhz=877.0,
    memory_gib=40.0,
    peak_memory_bandwidth=900e9,
    tdp_watts=250.0,
    peak_flops_fp64=7.8e12,
    peak_flops_fp32=15.7e12,
    pcie_bandwidth=12e9,  # PCIe gen3 x16 effective
    num_sms=80,
    bandwidth_knee_fraction=0.68,
    supported_memory_clocks_mhz=(405.0, 877.0),
)


_REGISTRY: dict[str, GPUArchitecture] = {}


def register_architecture(arch: GPUArchitecture, *, overwrite: bool = False) -> None:
    """Register an architecture so it can be looked up by name.

    Raises :class:`ValueError` if the name is taken and ``overwrite`` is
    false, so tests never silently clobber the built-ins.
    """
    key = arch.name.upper()
    if key in _REGISTRY and not overwrite:
        raise ValueError(f"architecture {arch.name!r} already registered")
    _REGISTRY[key] = arch


def get_architecture(name: str) -> GPUArchitecture:
    """Look up a registered architecture by (case-insensitive) name."""
    try:
        return _REGISTRY[name.upper()]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown architecture {name!r}; known: {known}") from None


def list_architectures() -> list[str]:
    """Names of all registered architectures, sorted."""
    return sorted(_REGISTRY)


register_architecture(GA100)
register_architecture(GV100)
