"""Table 6: performance-degradation thresholds on LAMMPS and ResNet50.

Shape assertions (paper Table 6): tightening the threshold from Nil to
5 % to 1 % monotonically raises the selected clock, cuts the time loss
under the bound, and shrinks the energy saving — reaching ~0 saving for
ResNet50 at 1 % exactly as the paper reports.
"""

import pytest

from repro.experiments.tab6 import TAB6_APPS, render_tab6, run_tab6


@pytest.fixture(scope="module")
def tab6(ctx, suite):
    return run_tab6(ctx, suite=suite)


def test_tab6_report(benchmark, tab6, report):
    benchmark(render_tab6, tab6)
    report("Table 6 - degradation thresholds", render_tab6(tab6))


def test_tab6_monotone_tradeoff(tab6):
    for app in TAB6_APPS:
        t_nil = tab6.cell(app, None)
        t_5 = tab6.cell(app, 0.05)
        t_1 = tab6.cell(app, 0.01)
        assert t_nil.freq_mhz <= t_5.freq_mhz <= t_1.freq_mhz
        assert t_nil.time_change_pct <= t_5.time_change_pct <= t_1.time_change_pct
        assert t_1.energy_saving_pct <= t_nil.energy_saving_pct


def test_tab6_bounds_respected(tab6):
    for app in TAB6_APPS:
        assert tab6.cell(app, 0.05).time_change_pct > -100 * 0.05 / 0.95
        assert tab6.cell(app, 0.01).time_change_pct > -100 * 0.01 / 0.99


def test_tab6_resnet_one_percent_near_zero_savings(tab6):
    """Paper: ResNet50 at the 1% threshold yields 0% savings (f_max)."""
    cell = tab6.cell("resnet50", 0.01)
    assert cell.energy_saving_pct < 12.0
