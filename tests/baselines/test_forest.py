"""Random-forest tests."""

import numpy as np
import pytest

from repro.baselines import RandomForestRegressor


def friedman_like(rng, n=300):
    x = rng.uniform(0, 1, size=(n, 5))
    y = 10 * np.sin(np.pi * x[:, 0] * x[:, 1]) + 20 * (x[:, 2] - 0.5) ** 2 + 10 * x[:, 3]
    return x, y


class TestFitQuality:
    def test_beats_single_stump_family(self, rng):
        x, y = friedman_like(rng)
        xt, yt = friedman_like(rng)
        forest = RandomForestRegressor(n_estimators=30, max_depth=8, seed=0).fit(x, y)
        mse = np.mean((forest.predict(xt) - yt) ** 2)
        assert mse < 0.25 * np.var(yt)

    def test_prediction_is_tree_mean(self, rng):
        x, y = friedman_like(rng, 100)
        forest = RandomForestRegressor(n_estimators=5, seed=0).fit(x, y)
        manual = np.mean([t.predict(x) for t in forest.trees_], axis=0)
        assert np.allclose(forest.predict(x), manual)

    def test_seeded_fit_deterministic(self, rng):
        x, y = friedman_like(rng, 100)
        a = RandomForestRegressor(n_estimators=8, seed=4).fit(x, y).predict(x)
        b = RandomForestRegressor(n_estimators=8, seed=4).fit(x, y).predict(x)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self, rng):
        x, y = friedman_like(rng, 100)
        a = RandomForestRegressor(n_estimators=8, seed=1).fit(x, y).predict(x)
        b = RandomForestRegressor(n_estimators=8, seed=2).fit(x, y).predict(x)
        assert not np.array_equal(a, b)

    def test_no_bootstrap_identical_deep_trees_fit_exactly(self, rng):
        x = np.arange(40.0)[:, None]
        y = rng.standard_normal(40)
        forest = RandomForestRegressor(n_estimators=3, bootstrap=False, max_features=None, seed=0)
        forest.fit(x, y)
        assert np.allclose(forest.predict(x), y)


class TestMaxFeatures:
    def test_third_rule(self, rng):
        x, y = friedman_like(rng, 60)
        forest = RandomForestRegressor(n_estimators=2, max_features="third", seed=0).fit(x, y)
        assert forest.trees_[0].max_features == 1  # 5 // 3

    def test_sqrt_rule(self, rng):
        x, y = friedman_like(rng, 60)
        forest = RandomForestRegressor(n_estimators=2, max_features="sqrt", seed=0).fit(x, y)
        assert forest.trees_[0].max_features == 2

    def test_explicit_int(self, rng):
        x, y = friedman_like(rng, 60)
        forest = RandomForestRegressor(n_estimators=2, max_features=4, seed=0).fit(x, y)
        assert forest.trees_[0].max_features == 4

    def test_out_of_range_int_rejected(self, rng):
        x, y = friedman_like(rng, 60)
        with pytest.raises(ValueError, match="max_features"):
            RandomForestRegressor(n_estimators=1, max_features=99, seed=0).fit(x, y)

    def test_unknown_rule_rejected(self, rng):
        x, y = friedman_like(rng, 60)
        with pytest.raises(ValueError, match="unsupported"):
            RandomForestRegressor(n_estimators=1, max_features="log99", seed=0).fit(x, y)


class TestGuards:
    def test_zero_estimators_rejected(self):
        with pytest.raises(ValueError, match="n_estimators"):
            RandomForestRegressor(n_estimators=0)

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError, match="fit"):
            RandomForestRegressor().predict(np.zeros((1, 2)))

    def test_length_mismatch(self):
        with pytest.raises(ValueError, match="rows"):
            RandomForestRegressor(n_estimators=1).fit(np.zeros((3, 1)), np.zeros(4))
