"""Registry mapping workload names to instances and paper groupings."""

from __future__ import annotations

from repro.workloads import realapps, spec_accel
from repro.workloads.base import Workload, WorkloadCategory
from repro.workloads.microbench import DGEMM, STREAM

__all__ = [
    "WorkloadRegistry",
    "default_registry",
    "get_workload",
    "training_workloads",
    "evaluation_workloads",
]


class WorkloadRegistry:
    """Named collection of workloads with paper-aligned groupings."""

    def __init__(self) -> None:
        self._workloads: dict[str, Workload] = {}

    def register(self, workload: Workload, *, overwrite: bool = False) -> None:
        """Add a workload; refuses to clobber unless ``overwrite``."""
        key = workload.name.lower()
        if key in self._workloads and not overwrite:
            raise ValueError(f"workload {workload.name!r} already registered")
        self._workloads[key] = workload

    def get(self, name: str) -> Workload:
        """Look up a workload by (case-insensitive) name."""
        try:
            return self._workloads[name.lower()]
        except KeyError:
            known = ", ".join(sorted(self._workloads))
            raise KeyError(f"unknown workload {name!r}; known: {known}") from None

    def __contains__(self, name: str) -> bool:
        return name.lower() in self._workloads

    def __len__(self) -> int:
        return len(self._workloads)

    def names(self) -> list[str]:
        """All registered names, sorted."""
        return sorted(self._workloads)

    def by_category(self, category: WorkloadCategory) -> list[Workload]:
        """All workloads in one Table 2 category, name-sorted."""
        return [w for _, w in sorted(self._workloads.items()) if w.category is category]

    def training_set(self) -> list[Workload]:
        """The 21 model-training workloads (micro-benchmarks + SPEC ACCEL)."""
        return self.by_category(WorkloadCategory.MICROBENCH) + self.by_category(WorkloadCategory.SPEC_ACCEL)

    def evaluation_set(self) -> list[Workload]:
        """The 6 unseen real applications used for evaluation."""
        return self.by_category(WorkloadCategory.REAL_APP)


def _build_default() -> WorkloadRegistry:
    reg = WorkloadRegistry()
    reg.register(DGEMM())
    reg.register(STREAM())
    for cls in (
        spec_accel.TPACF,
        spec_accel.Stencil,
        spec_accel.LBM,
        spec_accel.FFT,
        spec_accel.SPMV,
        spec_accel.MRIQ,
        spec_accel.Histo,
        spec_accel.BFS,
        spec_accel.CUTCP,
        spec_accel.KMeans,
        spec_accel.LavaMD,
        spec_accel.CFD,
        spec_accel.NW,
        spec_accel.Hotspot,
        spec_accel.LUD,
        spec_accel.GE,
        spec_accel.SRAD,
        spec_accel.HeartWall,
        spec_accel.BPlusTree,
    ):
        reg.register(cls())
    for cls in (
        realapps.LAMMPS,
        realapps.NAMD,
        realapps.GROMACS,
        realapps.LSTM,
        realapps.BERT,
        realapps.ResNet50,
    ):
        reg.register(cls())
    return reg


_DEFAULT = _build_default()


def default_registry() -> WorkloadRegistry:
    """The registry with all 27 paper workloads."""
    return _DEFAULT


def get_workload(name: str) -> Workload:
    """Look up a workload in the default registry."""
    return _DEFAULT.get(name)


def training_workloads() -> list[Workload]:
    """The 21 training workloads (paper Table 2)."""
    return _DEFAULT.training_set()


def evaluation_workloads() -> list[Workload]:
    """The 6 real evaluation applications (paper Table 2)."""
    return _DEFAULT.evaluation_set()
