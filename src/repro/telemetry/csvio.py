"""CSV persistence for collected metrics (paper Section 4.1).

The paper's launch module "saves output metrics of each run into a
comma-separated values format file"; this module is that format.  Files
are plain CSV with a header row, one line per sample, all-numeric values,
so they remain greppable and loadable by any downstream tool.
"""

from __future__ import annotations

import csv
from pathlib import Path

__all__ = ["write_samples_csv", "read_samples_csv"]


def write_samples_csv(path: str | Path, rows: list[dict[str, float]]) -> Path:
    """Write sample rows to ``path``; returns the resolved path.

    All rows must share the same keys (the first row defines the header) —
    a mismatch raises :class:`ValueError` rather than silently writing a
    ragged file.
    """
    if not rows:
        raise ValueError("refusing to write an empty CSV")
    path = Path(path)
    header = list(rows[0].keys())
    for i, row in enumerate(rows):
        if list(row.keys()) != header:
            raise ValueError(f"row {i} keys {sorted(row)} differ from header {sorted(header)}")
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=header)
        writer.writeheader()
        writer.writerows({k: repr(float(v)) for k, v in row.items()} for row in rows)
    return path


def read_samples_csv(path: str | Path) -> list[dict[str, float]]:
    """Read sample rows back; values are parsed to float."""
    path = Path(path)
    with path.open(newline="") as fh:
        reader = csv.DictReader(fh)
        if reader.fieldnames is None:
            raise ValueError(f"{path}: empty CSV")
        rows: list[dict[str, float]] = []
        for line_no, row in enumerate(reader, start=2):
            try:
                rows.append({k: float(v) for k, v in row.items()})
            except (TypeError, ValueError) as exc:
                raise ValueError(f"{path}:{line_no}: non-numeric value ({exc})") from exc
    return rows
