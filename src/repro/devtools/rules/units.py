"""Physical-units rules over the project call graph (UNIT001/UNIT002).

The selection chain multiplies power by time into energy, energy by
time into EDP/ED²P, and threads MHz clocks throughout.  These rules run
the :mod:`repro.devtools.units` inference pass — seeded by
:mod:`repro.units` annotations and the ``*_mhz``/``*_w``/``power``/
``energy_j`` naming conventions, propagated through assignments,
arithmetic and resolved call edges — over the packages where a unit
mix-up corrupts the paper's numbers silently.
"""

from __future__ import annotations

from typing import Iterable

from repro.devtools.context import ModuleContext
from repro.devtools.findings import Finding
from repro.devtools.rules.base import Rule, register
from repro.devtools.units import analyze_module

__all__ = ["UNIT001IncompatibleUnits", "UNIT002UndeclaredDerivedUnit"]

#: Packages carrying physical quantities end to end.
UNIT_PACKAGES = ("repro.gpusim", "repro.core", "repro.analysis", "repro.serving")


class _UnitRule(Rule):
    """Shared driver: run the inference pass once per module, filter by id."""

    needs_project = True

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        if ctx.project is None or not ctx.in_package(*UNIT_PACKAGES):
            return []
        return [
            self.finding(ctx, uf.node, uf.message)
            for uf in analyze_module(ctx, ctx.project)
            if uf.rule == self.rule_id
        ]


@register
class UNIT001IncompatibleUnits(_UnitRule):
    """Add/subtract/compare of provably different physical units."""

    rule_id = "UNIT001"
    severity = "error"
    summary = "add/subtract/compare mixes incompatible physical units"
    rationale = (
        "freq_mhz + power_w or `exec_time_s > power` type-checks as float "
        "and runs without error, but the number it produces is physically "
        "meaningless — exactly the silent corruption a units system exists "
        "to catch. Both operands must carry the same inferred dimension "
        "(dimensionless constants mix freely)."
    )


@register
class UNIT002UndeclaredDerivedUnit(_UnitRule):
    """Multiply/divide whose derived unit contradicts the target's declared unit."""

    rule_id = "UNIT002"
    severity = "error"
    summary = "multiply/divide result bound to a name declaring a different unit"
    rationale = (
        "`energy = power * clock` produces W*MHz, not joules; binding it to a "
        "name (or return) declared as J hides a wrong formula behind a "
        "plausible variable name. The derived dimension of every */ / "
        "expression must match the declared unit of what it is assigned to."
    )
