"""End-to-end determinism: same seeds, same science.

A reproduction is only as good as its reproducibility: two fresh
contexts with identical settings must produce bit-identical datasets,
models, predictions, and selections.
"""

import numpy as np

from repro.experiments import ExperimentContext, ExperimentSettings
from repro.workloads import get_workload


def _fresh_ctx():
    return ExperimentContext(ExperimentSettings.fast(seed=123))


class TestEndToEndDeterminism:
    def test_identical_pipelines_from_identical_seeds(self):
        ctx_a, ctx_b = _fresh_ctx(), _fresh_ctx()
        ds_a = ctx_a.pipeline("GA100").training_dataset
        ds_b = ctx_b.pipeline("GA100").training_dataset
        assert np.array_equal(ds_a.x, ds_b.x)
        assert np.array_equal(ds_a.y_power, ds_b.y_power)
        assert np.array_equal(ds_a.y_slowdown, ds_b.y_slowdown)

        res_a = ctx_a.pipeline("GA100").run_online(get_workload("lammps"))
        res_b = ctx_b.pipeline("GA100").run_online(get_workload("lammps"))
        assert np.array_equal(res_a.power_w, res_b.power_w)
        assert np.array_equal(res_a.time_s, res_b.time_s)
        assert res_a.selection("ED2P").freq_mhz == res_b.selection("ED2P").freq_mhz

    def test_different_seed_changes_measurements_not_science(self):
        a = ExperimentContext(ExperimentSettings.fast(seed=1))
        b = ExperimentContext(ExperimentSettings.fast(seed=2))
        res_a = a.pipeline("GA100").run_online(get_workload("lammps"))
        res_b = b.pipeline("GA100").run_online(get_workload("lammps"))
        # Raw measurements differ...
        assert res_a.measured_time_at_max_s != res_b.measured_time_at_max_s
        # ...but the selected clock is stable to within a few grid bins.
        assert abs(res_a.selection("ED2P").freq_mhz - res_b.selection("ED2P").freq_mhz) <= 150.0
