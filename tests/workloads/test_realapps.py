"""Real-application proxy tests: per-app character (paper Section 5)."""

import numpy as np
import pytest

from repro.gpusim import GA100, SimulatedGPU
from repro.gpusim.noise import NoiseModel
from repro.workloads import evaluation_workloads, realapps
from repro.workloads.base import WorkloadCategory


@pytest.fixture(scope="module")
def device():
    return SimulatedGPU(GA100, seed=0, noise=NoiseModel.disabled())


ALL_APPS = [
    realapps.LAMMPS(),
    realapps.NAMD(),
    realapps.GROMACS(),
    realapps.LSTM(),
    realapps.BERT(),
    realapps.ResNet50(),
]


@pytest.mark.parametrize("app", ALL_APPS, ids=lambda a: a.name)
class TestEveryApp:
    def test_category(self, app):
        assert app.category is WorkloadCategory.REAL_APP

    def test_census_valid(self, app):
        c = app.census()
        assert c.total_flops > 0
        assert c.dram_bytes > 0

    def test_work_scales_with_steps(self, app):
        small = app.census(app.min_size)
        large = app.census(app.min_size * 10)
        assert large.total_flops == pytest.approx(10.0 * small.total_flops, rel=0.01)

    def test_runtime_reasonable(self, app, device):
        t = device.true_time(app.census(), 1410.0)
        assert 0.1 < t < 120.0


class TestPerAppCharacter:
    def test_bert_most_compute_dense(self, device):
        activities = {
            a.name: device.timing.evaluate(a.census(), 1410.0).fp_active for a in ALL_APPS
        }
        assert activities["bert"] == max(activities.values())

    def test_lstm_low_utilization(self, device):
        """Paper Section 7: LSTM is the low-utilization workload."""
        bd = device.timing.evaluate(realapps.LSTM().census(), 1410.0)
        assert bd.fp_active < 0.35
        assert bd.sm_active < 0.75

    def test_gromacs_time_dvfs_insensitive_near_top(self, device):
        """Paper Section 5.1: GROMACS time barely moves under DVFS."""
        c = realapps.GROMACS().census()
        t_max = device.true_time(c, 1410.0)
        t_1100 = device.true_time(c, 1110.0)
        assert t_1100 / t_max < 1.05

    def test_lstm_time_flat_down_to_mid_clocks(self, device):
        c = realapps.LSTM().census()
        t_max = device.true_time(c, 1410.0)
        t_900 = device.true_time(c, 900.0)
        assert t_900 / t_max < 1.10

    def test_lammps_namd_compute_heavy(self, device):
        for cls in (realapps.LAMMPS, realapps.NAMD):
            bd = device.timing.evaluate(cls().census(), 1410.0)
            assert bd.fp_active > 0.5, cls.__name__

    def test_resnet50_mixed(self, device):
        bd = device.timing.evaluate(realapps.ResNet50().census(), 1410.0)
        assert 0.3 < bd.fp_active < 0.75
        assert bd.dram_active > 0.3

    def test_lammps_fp64_namd_fp32(self):
        assert realapps.LAMMPS().census().flops_fp64 > 0
        assert realapps.LAMMPS().census().flops_fp32 == 0
        assert realapps.NAMD().census().flops_fp32 > 0
        assert realapps.NAMD().census().flops_fp64 == 0

    def test_real_apps_flatter_than_dgemm(self, device):
        """Real codes slow down less at f_min than the ideal DGEMM kernel."""
        from repro.workloads.microbench import DGEMM

        dgemm_slow = device.true_time(DGEMM().census(), 510.0) / device.true_time(
            DGEMM().census(), 1410.0
        )
        for app in ALL_APPS:
            c = app.census()
            slow = device.true_time(c, 510.0) / device.true_time(c, 1410.0)
            assert slow < dgemm_slow, app.name


class TestEvaluationSetIntegrity:
    def test_registry_returns_all_six(self):
        assert {w.name for w in evaluation_workloads()} == {a.name for a in ALL_APPS}

    def test_apps_have_no_reference_kernels(self):
        """Real apps are census-only proxies (documented substitution)."""
        for app in ALL_APPS:
            assert not app.has_reference_kernel
