"""Ablation: relative-slowdown vs absolute-seconds time targets.

Shape assertion: the relative target (this reproduction's documented
substitution, DESIGN.md) beats absolute seconds on normalized-curve
accuracy — absolute runtimes spanning orders of magnitude are not
identifiable from three intensive features.
"""

import pytest

from repro.experiments.ablations import render_ablation, run_time_target_ablation


@pytest.fixture(scope="module")
def rows(ctx, suite):
    return run_time_target_ablation(ctx, suite=suite)


def test_time_target_ablation_report(benchmark, rows, report):
    benchmark(render_ablation, "Ablation: time-model target", rows)
    report("Ablation - time target", render_ablation("Ablation: time-model target", rows))


def test_both_variants_present(rows):
    assert {r.variant for r in rows} == {"relative", "absolute"}


def test_relative_target_wins(rows):
    accs = {r.variant: r.eval_accuracy for r in rows}
    assert accs["relative"] > accs["absolute"]
