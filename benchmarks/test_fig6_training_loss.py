"""Figure 6: power/time model training and validation loss curves.

Shape assertions (paper Section 4.3): the power model converges within
100 epochs, the time model within 25, and validation loss tracks
training loss at the stopping points.  The benchmark times a fresh
25-epoch time-model fit (the paper reports 2.6 s for theirs).
"""

import pytest

from repro.core.models import TimeModel
from repro.experiments.fig6 import render_fig6, run_fig6


@pytest.fixture(scope="module")
def fig6(ctx):
    return run_fig6(ctx)


def test_fig6_histories(benchmark, fig6, report):
    benchmark(render_fig6, fig6)
    report("Figure 6 - training and validation loss", render_fig6(fig6))
    assert fig6.power_history.epochs_run == 100
    assert fig6.time_history.epochs_run == 25


def test_fig6_convergence(fig6):
    p, t = fig6.power_history, fig6.time_history
    assert p.train_loss[-1] < 0.2 * p.train_loss[0]
    assert t.train_loss[-1] < 0.6 * t.train_loss[0]
    assert p.val_loss[-1] < 3.0 * p.train_loss[-1] + 0.05


def test_fig6_time_model_training_speed(benchmark, ctx):
    """Time-model training cost (paper: ~2.6 s on their setup)."""
    dataset = ctx.pipeline("GA100").training_dataset

    def fit_once():
        model = TimeModel(seed=1)
        model.fit(dataset)
        return model

    model = benchmark.pedantic(fit_once, rounds=1, iterations=1)
    assert model.history.epochs_run == 25
