"""Reference-kernel validation for the newly runnable proxies."""

import numpy as np
import pytest

from repro.workloads import spec_accel


class TestNWReference:
    def test_identical_sequences_score_maximum(self):
        """Aligning a sequence against itself scores 2 per position."""
        w = spec_accel.NW()

        class FixedRng:
            def __init__(self, seq):
                self.seq = seq
                self.calls = 0

            def integers(self, lo, hi, size):
                self.calls += 1
                return self.seq

        seq = np.tile(np.array([0, 1, 2, 3]), 16)  # length 64 (min size)
        out = w.run_reference(64, FixedRng(seq))
        assert out["checksum"] == 2.0 * 64

    def test_random_alignment_bounded(self):
        w = spec_accel.NW()
        out = w.run_reference(64, np.random.default_rng(0))
        assert -64.0 <= out["checksum"] <= 2.0 * 64

    def test_reproducible(self):
        w = spec_accel.NW()
        a = w.run_reference(64, np.random.default_rng(3))
        b = w.run_reference(64, np.random.default_rng(3))
        assert a["checksum"] == b["checksum"]

    def test_census_flop_rate_matches_reference(self):
        w = spec_accel.NW(alignments=1)
        ref = w.run_reference(128, np.random.default_rng(0))
        assert ref["flops"] == pytest.approx(w.census(128).flops_fp32)


class TestHotspotReference:
    def test_uniform_field_with_no_power_is_fixed_point(self):
        w = spec_accel.Hotspot()

        class ConstRng:
            def __init__(self):
                self.call = 0

            def uniform(self, lo, hi, size):
                self.call += 1
                # First call = temperature (constant), second = power (zero).
                return np.full(size, 60.0) if self.call == 1 else np.zeros(size)

        out = w.run_reference(32, ConstRng())
        assert out["checksum"] == pytest.approx(60.0 * 32 * 32)

    def test_positive_power_heats(self):
        """With strictly positive power everywhere, total heat rises."""
        w = spec_accel.Hotspot()
        out = w.run_reference(32, np.random.default_rng(0))
        g = np.random.default_rng(0)
        temp = g.uniform(40.0, 90.0, size=(32, 32))
        assert out["checksum"] > temp.sum() - 1e-6


class TestTPACFReference:
    def test_histogram_counts_all_pairs(self):
        w = spec_accel.TPACF()
        n = 256
        out = w.run_reference(n, np.random.default_rng(0))
        assert out["checksum"] == n * (n - 1) / 2

    def test_size_capped_for_demo(self):
        w = spec_accel.TPACF()
        out = w.run_reference(100_000, np.random.default_rng(0))
        assert out["checksum"] == 2048 * 2047 / 2

    def test_reference_flag_now_set(self):
        for cls in (spec_accel.NW, spec_accel.Hotspot, spec_accel.TPACF):
            assert cls().has_reference_kernel, cls.__name__
