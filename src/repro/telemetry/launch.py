"""Launch module (paper Section 4.1): orchestrates a collection campaign.

A campaign is (workloads) x (DVFS configurations) x (runs).  For every
cell the launcher applies the clock, profiles the execution, and persists
one CSV of 20 ms samples.  The returned :class:`RunArtifact` list is the
campaign manifest — the dataset builder in :mod:`repro.core.dataset`
consumes either the in-memory artifacts or the CSVs on disk.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from time import perf_counter

from repro import obs
from repro.gpusim.device import RunRecord, SimulatedGPU
from repro.telemetry.control import ClockController
from repro.telemetry.csvio import write_columns_csv
from repro.telemetry.profile import Profiler, record_columns
from repro.workloads.base import Workload

__all__ = ["LaunchConfig", "RunArtifact", "Launcher"]


@dataclass(frozen=True)
class LaunchConfig:
    """What to collect.

    Mirrors the knobs the paper's launch module exposes: the DVFS
    configurations, the executables (workloads) with their arguments
    (sizes), the results path, the number of runs, and the sampling
    interval (owned by the device).
    """

    freqs_mhz: tuple[float, ...]
    runs_per_config: int = 3
    output_dir: Path | None = None
    #: Optional per-workload size overrides (workload name -> size).
    sizes: dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.freqs_mhz:
            raise ValueError("freqs_mhz must not be empty")
        if self.runs_per_config < 1:
            raise ValueError("runs_per_config must be >= 1")


@dataclass(frozen=True)
class RunArtifact:
    """One completed run: its record plus where the CSV landed (if any)."""

    workload: str
    freq_mhz: float
    run_index: int
    record: RunRecord
    csv_path: Path | None = None


class Launcher:
    """Drives a full collection campaign against one device."""

    def __init__(self, device: SimulatedGPU) -> None:
        self.device = device
        self.controller = ClockController(device)
        self.profiler = Profiler(device)

    def collect(
        self,
        workloads: list[Workload],
        config: LaunchConfig,
        *,
        workers: int | None = None,
    ) -> list[RunArtifact]:
        """Run the campaign; returns one artifact per (workload, freq, run).

        With ``workers=None`` (the default) the campaign runs sequentially
        through the device's own clock and RNG — the historical behaviour,
        where each run's noise continues the device stream.  Any integer
        ``workers`` (including 1) switches to the deterministic campaign
        scheme of :mod:`repro.telemetry.parallel`: every cell gets an
        independent child RNG spawned from the device seed, so results are
        bitwise-identical for any worker count.

        The device clock is always restored to the default afterwards,
        even if a workload raises — leaving a shared node at a throttled
        clock is the classic data-collection footgun.
        """
        if workers is not None:
            from repro.telemetry.parallel import run_campaign

            return run_campaign(self.device, workloads, config, workers=workers)
        from repro.telemetry.parallel import _cell_instruments

        cells_total, cell_seconds = _cell_instruments()
        artifacts: list[RunArtifact] = []
        try:
            for workload in workloads:
                size = config.sizes.get(workload.name)
                for freq in config.freqs_mhz:
                    actual = self.controller.set_sm_clock(freq)
                    for run_idx in range(config.runs_per_config):
                        t0 = perf_counter()
                        with obs.span(
                            "telemetry.cell",
                            workload=workload.name,
                            freq_mhz=actual,
                            run=run_idx,
                        ):
                            record = self.profiler.profile(workload, size=size)
                        cells_total.inc()
                        cell_seconds.observe(perf_counter() - t0)
                        csv_path: Path | None = None
                        if config.output_dir is not None:
                            csv_path = (
                                Path(config.output_dir)
                                / workload.name
                                / f"{workload.name}_{int(round(actual))}mhz_run{run_idx}.csv"
                            )
                            header, columns = record_columns(record)
                            write_columns_csv(csv_path, header, columns)
                        artifacts.append(
                            RunArtifact(
                                workload=workload.name,
                                freq_mhz=actual,
                                run_index=run_idx,
                                record=record,
                                csv_path=csv_path,
                            )
                        )
        finally:
            self.controller.reset()
        return artifacts

    def collect_at_max(
        self,
        workloads: list[Workload],
        *,
        runs: int = 1,
        sizes: dict[str, int] | None = None,
        workers: int | None = None,
    ) -> list[RunArtifact]:
        """Collect only at the default/maximum clock.

        This is the *online phase* acquisition: the paper measures an
        unseen application once at the default clock and predicts the rest
        of the DVFS space from those features.  ``sizes`` carries
        per-workload size overrides through to the profiler, exactly as
        :meth:`collect` honours them.
        """
        config = LaunchConfig(
            freqs_mhz=(self.device.arch.default_core_freq_mhz,),
            runs_per_config=runs,
            sizes=dict(sizes) if sizes else {},
        )
        return self.collect(workloads, config, workers=workers)
