"""Per-node selection services and the fleet clock policy.

Every node runs its own :class:`~repro.serving.service.SelectionService`
— its own measurement device (seeded from the node's SeedSequence
child), its own warm LRU — mirroring a deployment where the selection
sidecar runs on the node it serves.  Coarse cache quantization
(``quantize_decimals=3`` by default) means repeated jobs of one
application usually hit the node-local cache even though every job is
re-profiled with measurement noise.

:class:`FleetServicePolicy` is the per-*job* flavour of
:class:`~repro.cluster.policy.ServiceDrivenPolicy`: it asks the owning
node's service for every placement instead of memoising one decision
per application, which is what pushes >= 1e5 selections through the
serving layer in a day-scale campaign.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.job import Job
from repro.cluster.node import GPUNode
from repro.cluster.policy import ClockDecision, ClockPolicy
from repro.core.energy import ED2P, EDP, ObjectiveFunction
from repro.core.pipeline import FrequencySelectionPipeline
from repro.fleet.models import MAX_SAMPLES_PER_RUN, fleet_models
from repro.fleet.scenario import Scenario
from repro.gpusim import GA100, GV100, SimulatedGPU
from repro.serving.service import SelectionRequest, SelectionService

__all__ = ["build_fleet", "FleetServicePolicy"]

_ARCHS = {"GA100": GA100, "GV100": GV100}


def build_fleet(
    scenario: Scenario, node_root: np.random.SeedSequence
) -> tuple[list[GPUNode], dict[int, SelectionService]]:
    """Nodes plus one selection service per node.

    ``node_root`` spawns one child per node (in node-id order); each
    node child spawns (board-parent, service-device) grandchildren, so
    every RNG stream in the fleet hangs off the campaign seed with a
    stable, worker-count-independent lineage.
    """
    nodes: list[GPUNode] = []
    services: dict[int, SelectionService] = {}
    node_children = node_root.spawn(scenario.n_nodes)
    node_id = 0
    for group in scenario.node_groups:
        arch = _ARCHS[group.arch]
        power_model, time_model = fleet_models(group.arch)
        for _ in range(group.count):
            board_parent, service_seed = node_children[node_id].spawn(2)
            nodes.append(
                GPUNode(
                    node_id,
                    arch,
                    gpus_per_node=group.gpus_per_node,
                    seed=board_parent,
                    max_samples_per_run=scenario.max_samples_per_run,
                )
            )
            service_device = SimulatedGPU(
                arch, seed=service_seed, max_samples_per_run=MAX_SAMPLES_PER_RUN
            )
            pipeline = FrequencySelectionPipeline(
                service_device, power_model=power_model, time_model=time_model
            )
            services[node_id] = SelectionService(
                pipeline,
                objectives=(EDP, ED2P),
                threshold=scenario.threshold,
                cache_size=scenario.cache_size,
                quantize_decimals=scenario.quantize_decimals,
                fused=scenario.fused,
            )
            node_id += 1
    return nodes, services


class FleetServicePolicy(ClockPolicy):
    """Per-job clock decisions from the owning node's service."""

    name = "fleet-service"

    def __init__(
        self,
        nodes: list[GPUNode],
        services: dict[int, SelectionService],
        *,
        objective: ObjectiveFunction = ED2P,
        threshold: float | None = None,
    ) -> None:
        self.objective = objective
        self.threshold = threshold
        self._service_of: dict[SimulatedGPU, SelectionService] = {}
        for node in nodes:
            service = services[node.node_id]
            for gpu in node.gpus:
                self._service_of[gpu] = service

    def clock_for(self, job: Job, device: SimulatedGPU) -> float:
        return self.decide(job, device).clock_mhz

    def decide(self, job: Job, device: SimulatedGPU) -> ClockDecision:
        service = self._service_of[device]
        response = service.select_one(
            SelectionRequest.from_workload(job.workload, size=job.size),
            objectives=(self.objective,),
            threshold=self.threshold,
        )
        clock = device.dvfs.snap(response.selection(self.objective.name).freq_mhz)
        return ClockDecision(
            clock_mhz=clock,
            freqs_mhz=response.freqs_mhz,
            power_curve_w=response.power_w,
            time_curve_s=response.time_s,
        ).at_clock(clock)
