"""Epsilon-insensitive support vector regression trained by SMO.

Solves the standard epsilon-SVR dual over difference variables
``beta_i = alpha_i - alpha_i*`` with box constraint ``|beta_i| <= C`` and
``sum(beta) = 0``:

``max  -1/2 beta' K beta + beta' y - epsilon |beta|_1``

SMO picks pairs (i, j), optimises the two coordinates analytically under
the equality constraint, and repeats until the KKT violation drops under
``tol``.  The piecewise-linear epsilon term is handled by evaluating the
subproblem's closed form on each linear piece of beta_i.

Kernels: RBF (default, with the median-distance "scale"-like gamma) and
linear.  Features are standardised internally, as libsvm recommends.
"""

from __future__ import annotations

import numpy as np

__all__ = ["SVR"]


class SVR:
    """Epsilon-SVR with RBF or linear kernel, SMO solver."""

    def __init__(
        self,
        *,
        C: float = 10.0,
        epsilon: float = 0.05,
        kernel: str = "rbf",
        gamma: float | str = "scale",
        tol: float = 1e-3,
        max_passes: int = 200,
        seed: int | None = None,
    ) -> None:
        if C <= 0:
            raise ValueError("C must be positive")
        if epsilon < 0:
            raise ValueError("epsilon must be non-negative")
        if kernel not in ("rbf", "linear"):
            raise ValueError(f"unsupported kernel {kernel!r}")
        self.C = float(C)
        self.epsilon = float(epsilon)
        self.kernel = kernel
        self.gamma = gamma
        self.tol = float(tol)
        self.max_passes = int(max_passes)
        self.seed = seed
        self._x: np.ndarray | None = None
        self._beta: np.ndarray | None = None
        self._bias: float = 0.0
        self._gamma_value: float = 1.0
        self._mean: np.ndarray | None = None
        self._scale: np.ndarray | None = None

    # ------------------------------------------------------------------
    def _kernel_matrix(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        if self.kernel == "linear":
            return a @ b.T
        # RBF via the expanded-norm identity, fully vectorized.
        sq = (a**2).sum(axis=1)[:, None] + (b**2).sum(axis=1)[None, :] - 2.0 * a @ b.T
        np.maximum(sq, 0.0, out=sq)
        return np.exp(-self._gamma_value * sq)

    def _resolve_gamma(self, x: np.ndarray) -> float:
        if isinstance(self.gamma, (int, float)):
            if self.gamma <= 0:
                raise ValueError("gamma must be positive")
            return float(self.gamma)
        if self.gamma == "scale":
            var = x.var()
            return 1.0 / (x.shape[1] * var) if var > 0 else 1.0
        raise ValueError(f"unsupported gamma {self.gamma!r}")

    # ------------------------------------------------------------------
    def fit(self, x: np.ndarray, y: np.ndarray) -> "SVR":
        """Train by SMO; returns self."""
        x = np.atleast_2d(np.asarray(x, dtype=float))
        y = np.asarray(y, dtype=float).reshape(-1)
        if x.shape[0] != y.size:
            raise ValueError(f"X has {x.shape[0]} rows but y has {y.size}")
        n = x.shape[0]
        if n < 2:
            raise ValueError("need at least 2 samples")

        self._mean = x.mean(axis=0)
        scale = x.std(axis=0)
        self._scale = np.where(scale > 0, scale, 1.0)
        xs = (x - self._mean) / self._scale
        self._gamma_value = self._resolve_gamma(xs)

        k = self._kernel_matrix(xs, xs)
        beta = np.zeros(n)
        # f_i = current decision value without bias.
        f = np.zeros(n)
        rng = np.random.default_rng(self.seed)

        for _ in range(self.max_passes):
            # KKT violation: for epsilon-SVR, optimal beta satisfies
            # y_i - f_i - bias in the epsilon tube unless beta at a bound.
            bias = self._estimate_bias(beta, f, y)
            err = y - f - bias
            up_violation = (err > self.epsilon + self.tol) & (beta < self.C)
            down_violation = (err < -self.epsilon - self.tol) & (beta > -self.C)
            violators = np.nonzero(up_violation | down_violation)[0]
            if violators.size == 0:
                break
            order = rng.permutation(violators)
            changed = 0
            for i in order:
                j = int(np.argmax(np.abs(err - err[i]))) if n > 1 else i
                if j == i:
                    continue
                if self._optimise_pair(int(i), j, beta, f, k, y):
                    err = y - f - bias
                    changed += 1
            if changed == 0:
                break

        self._x = xs
        self._beta = beta
        self._bias = self._estimate_bias(beta, f, y)
        return self

    def _optimise_pair(
        self,
        i: int,
        j: int,
        beta: np.ndarray,
        f: np.ndarray,
        k: np.ndarray,
        y: np.ndarray,
    ) -> bool:
        """Analytic update of (beta_i, beta_j) keeping their sum fixed."""
        eta = k[i, i] + k[j, j] - 2.0 * k[i, j]
        if eta <= 1e-12:
            return False
        s = beta[i] + beta[j]
        # Residuals excluding the pair's own contribution via current f.
        g_i = y[i] - (f[i] - beta[i] * k[i, i] - beta[j] * k[i, j])
        g_j = y[j] - (f[j] - beta[i] * k[i, j] - beta[j] * k[j, j])
        # With beta_j = s - beta_i, objective in beta_i is piecewise
        # quadratic; optimise each epsilon-sign piece and keep the best.
        best_obj = -np.inf
        best_bi = beta[i]
        # Integer sign flags: the sentinel tests below stay exact (== on
        # ints) and the epsilon term multiplies identically.
        for sign_i in (-1, 0, 1):
            for sign_j in (-1, 0, 1):
                # Unconstrained optimum of the piece.
                numer = g_i - g_j - s * (k[i, j] - k[j, j]) - self.epsilon * (sign_i - sign_j)
                bi = numer / eta
                lo = max(-self.C, s - self.C)
                hi = min(self.C, s + self.C)
                bi = float(np.clip(bi, lo, hi))
                # Verify the sign assumption holds on this piece (0 means
                # "at the kink", always admissible).
                if sign_i != 0 and np.sign(bi) not in (0.0, sign_i):
                    continue
                bj = s - bi
                if sign_j != 0 and np.sign(bj) not in (0.0, sign_j):
                    continue
                obj = self._pair_objective(bi, bj, i, j, g_i, g_j, k)
                if obj > best_obj:
                    best_obj = obj
                    best_bi = bi
        if abs(best_bi - beta[i]) < 1e-12:
            return False
        delta_i = best_bi - beta[i]
        delta_j = -delta_i
        f += delta_i * k[:, i] + delta_j * k[:, j]
        beta[i] = best_bi
        beta[j] = s - best_bi
        return True

    def _pair_objective(
        self, bi: float, bj: float, i: int, j: int, g_i: float, g_j: float, k: np.ndarray
    ) -> float:
        quad = 0.5 * (bi**2 * k[i, i] + bj**2 * k[j, j] + 2.0 * bi * bj * k[i, j])
        lin = bi * g_i + bj * g_j
        return lin - quad - self.epsilon * (abs(bi) + abs(bj))

    def _estimate_bias(self, beta: np.ndarray, f: np.ndarray, y: np.ndarray) -> float:
        """Bias from free (strictly inside the box) support vectors."""
        free = (np.abs(beta) > 1e-8) & (np.abs(beta) < self.C - 1e-8)
        if np.any(free):
            # On free SVs: y - f - bias = +/- epsilon * sign(beta).
            return float(np.mean(y[free] - f[free] - self.epsilon * np.sign(beta[free])))
        return float(np.median(y - f))

    # ------------------------------------------------------------------
    def predict(self, x: np.ndarray) -> np.ndarray:
        """Kernel-expansion prediction."""
        if self._x is None or self._beta is None:
            raise RuntimeError("predict called before fit")
        x = np.atleast_2d(np.asarray(x, dtype=float))
        xs = (x - self._mean) / self._scale
        k = self._kernel_matrix(xs, self._x)
        return k @ self._beta + self._bias

    @property
    def n_support_(self) -> int:
        """Number of support vectors (non-zero duals)."""
        if self._beta is None:
            raise RuntimeError("model not fitted")
        return int(np.sum(np.abs(self._beta) > 1e-8))
