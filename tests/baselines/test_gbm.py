"""Gradient-boosting tests."""

import numpy as np
import pytest

from repro.baselines import GradientBoostingRegressor


def problem(rng, n=300):
    x = rng.uniform(-1, 1, size=(n, 3))
    y = x[:, 0] ** 2 + np.sin(3 * x[:, 1]) + 0.5 * x[:, 2]
    return x, y


class TestBoosting:
    def test_fits_nonlinear_function(self, rng):
        x, y = problem(rng)
        gbm = GradientBoostingRegressor(n_estimators=150, max_depth=3, seed=0).fit(x, y)
        mse = np.mean((gbm.predict(x) - y) ** 2)
        assert mse < 0.02 * np.var(y)

    def test_staged_error_decreases(self, rng):
        x, y = problem(rng)
        gbm = GradientBoostingRegressor(n_estimators=60, max_depth=3, seed=0).fit(x, y)
        stages = gbm.staged_predict(x)
        errors = ((stages - y) ** 2).mean(axis=1)
        assert errors[-1] < errors[10] < errors[0]

    def test_base_prediction_is_target_mean(self, rng):
        x, y = problem(rng, 100)
        gbm = GradientBoostingRegressor(n_estimators=1, seed=0).fit(x, y)
        assert gbm.base_prediction_ == pytest.approx(y.mean())

    def test_more_rounds_fit_no_worse(self, rng):
        x, y = problem(rng, 150)
        errs = []
        for rounds in (10, 50, 200):
            gbm = GradientBoostingRegressor(n_estimators=rounds, max_depth=3, seed=0).fit(x, y)
            errs.append(float(np.mean((gbm.predict(x) - y) ** 2)))
        assert errs[0] >= errs[1] >= errs[2]

    def test_seeded_deterministic(self, rng):
        x, y = problem(rng, 100)
        a = GradientBoostingRegressor(n_estimators=20, subsample=0.7, seed=5).fit(x, y).predict(x)
        b = GradientBoostingRegressor(n_estimators=20, subsample=0.7, seed=5).fit(x, y).predict(x)
        assert np.array_equal(a, b)

    def test_regularisation_shrinks_leaf_magnitudes(self, rng):
        """Large reg_lambda must pull predictions toward the mean."""
        x, y = problem(rng, 150)
        free = GradientBoostingRegressor(n_estimators=20, reg_lambda=0.0, seed=0).fit(x, y)
        heavy = GradientBoostingRegressor(n_estimators=20, reg_lambda=50.0, seed=0).fit(x, y)
        spread_free = np.ptp(free.predict(x))
        spread_heavy = np.ptp(heavy.predict(x))
        assert spread_heavy < spread_free

    def test_subsampling_still_converges(self, rng):
        x, y = problem(rng)
        gbm = GradientBoostingRegressor(n_estimators=120, subsample=0.6, seed=0).fit(x, y)
        assert np.mean((gbm.predict(x) - y) ** 2) < 0.1 * np.var(y)


class TestGuards:
    def test_invalid_learning_rate(self):
        with pytest.raises(ValueError, match="learning_rate"):
            GradientBoostingRegressor(learning_rate=0.0)

    def test_invalid_subsample(self):
        with pytest.raises(ValueError, match="subsample"):
            GradientBoostingRegressor(subsample=1.5)

    def test_invalid_reg_lambda(self):
        with pytest.raises(ValueError, match="reg_lambda"):
            GradientBoostingRegressor(reg_lambda=-1.0)

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError, match="fit"):
            GradientBoostingRegressor().predict(np.zeros((1, 2)))

    def test_staged_before_fit(self):
        with pytest.raises(RuntimeError, match="fit"):
            GradientBoostingRegressor().staged_predict(np.zeros((1, 2)))
