"""Report-rendering tests."""

import pytest

from repro.experiments.report import render_series, render_table


class TestRenderTable:
    def test_basic_layout(self):
        out = render_table(["a", "b"], [[1, 2.5], ["x", 10.0]])
        lines = out.splitlines()
        assert lines[0].split("|")[0].strip() == "a"
        assert "---" in lines[1]
        assert len(lines) == 4

    def test_title_prepended(self):
        out = render_table(["a"], [[1]], title="My Table")
        assert out.splitlines()[0] == "My Table"

    def test_float_formatting(self):
        out = render_table(["v"], [[3.14159], [123.456]])
        assert "3.14" in out
        assert "123.5" in out  # >= 10 gets one decimal

    def test_column_alignment(self):
        out = render_table(["name", "value"], [["aa", 1], ["bbbb", 22]])
        lines = out.splitlines()
        # All rows have the same width.
        assert len({len(line) for line in lines}) == 1

    def test_ragged_row_rejected(self):
        with pytest.raises(ValueError, match="row width"):
            render_table(["a", "b"], [[1]])


class TestRenderSeries:
    def test_subsamples_and_keeps_last(self):
        xs = list(range(0, 61))
        ys = [float(x) * 2 for x in xs]
        out = render_series("s", xs, ys, every=10)
        assert out.startswith("s: ")
        assert "60:120" in out  # final point always present

    def test_every_one_keeps_all(self):
        out = render_series("s", [1, 2, 3], [4.0, 5.0, 6.0], every=1)
        assert out.count(":") == 4  # label colon + three points

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="equal length"):
            render_series("s", [1, 2], [1.0])
