"""Report rendering: JSON schema, text format, and the CLI surface."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.devtools import Baseline, render_text, run_check

_REPORT_KEYS = {
    "schema",
    "ok",
    "root",
    "files_checked",
    "rules",
    "findings",
    "baselined",
    "stale_baseline",
    "parse_errors",
    "suppressed",
    "duration_s",
    "timings",
    "jobs",
}


@pytest.fixture(scope="module")
def report():
    return run_check()


def test_json_schema_keys(report):
    payload = json.loads(report.to_json())
    assert set(payload) == _REPORT_KEYS
    assert payload["schema"] == 1
    assert isinstance(payload["files_checked"], int)
    for rule in payload["rules"]:
        assert set(rule) == {"id", "severity", "summary"}
    for finding in payload["findings"] + payload["baselined"]:
        assert set(finding) == {"path", "line", "col", "rule", "severity", "message"}


def test_render_text_has_summary_line(report):
    text = render_text(report)
    last = text.splitlines()[-1]
    assert last.startswith(f"checked {report.files_checked} files")
    assert "rules" in last


def test_render_text_lists_findings():
    findings_report = run_check(baseline=Baseline())
    text = render_text(findings_report)
    for finding in findings_report.findings:
        assert finding.render() in text
        # path:line:col prefix keeps locations editor-clickable.
        assert finding.render().startswith(f"{finding.path}:{finding.line}:")


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def test_cli_check_exits_zero_on_shipped_tree(capsys):
    assert main(["check"]) == 0
    out = capsys.readouterr().out
    assert "no violations" in out


def test_cli_check_json_parses(capsys):
    assert main(["check", "--format", "json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["ok"] is True


def test_cli_check_list_rules(capsys):
    assert main(["check", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("DET001", "DET002", "THR001", "NUM001", "OBS001"):
        assert rule_id in out


def test_cli_check_rule_subset(capsys):
    assert main(["check", "--rules", "obs001"]) == 0
    payload_ok = capsys.readouterr().out
    assert "1 rules" in payload_ok


def test_cli_check_unknown_rule_is_usage_error(capsys):
    assert main(["check", "--rules", "NOPE01"]) == 2
    assert "unknown rule ids" in capsys.readouterr().err


def test_cli_check_no_baseline_is_clean(capsys):
    # The committed baseline is empty (all grandfathered findings have
    # been fixed), so the tree must be clean even without it.
    code = main(["check", "--no-baseline"])
    out = capsys.readouterr().out
    assert code == 0
    assert "no violations" in out


def test_cli_check_missing_baseline_path_is_usage_error(capsys):
    assert main(["check", "--baseline", "/nonexistent/b.json"]) == 2
    assert "no such baseline" in capsys.readouterr().err


# ----------------------------------------------------------------------
# GitHub annotations format
# ----------------------------------------------------------------------
def test_render_github_clean_tree_emits_notice(report):
    from repro.devtools import render_github

    out = render_github(report)
    assert out.startswith("::notice title=repro check::")
    assert "no violations" in out


def test_render_github_findings_become_error_annotations(tmp_path):
    from repro.devtools import render_github

    pkg = tmp_path / "repro"
    pkg.mkdir()
    (pkg / "__init__.py").write_text("")
    (pkg / "mod.py").write_text("def f(x):\n    return x == 0.25\n")
    findings_report = run_check(tmp_path, baseline=Baseline())
    out = render_github(findings_report)
    lines = out.splitlines()
    assert lines  # the fixture violates NUM001
    for line in lines:
        assert line.startswith("::error file=")
        assert "title=NUM001" in line
    # col is 1-based in annotations (findings store 0-based).
    assert ",col=" in lines[0]


def test_render_github_escapes_percent_and_newlines():
    from repro.devtools.engine import render_github, CheckReport
    from repro.devtools.findings import Finding

    finding = Finding(
        path="repro/mod.py", line=3, col=0, rule_id="NUM001",
        severity="error", message="100% broken\nsecond line",
    )
    report = CheckReport(
        root="/nonexistent", files_checked=1, rules_run=["NUM001"],
        findings=[finding], baselined=[], stale_baseline=[],
        parse_errors=[], suppressed=0, duration_s=0.0,
    )
    out = render_github(report)
    assert "100%25 broken%0Asecond line" in out


def test_cli_check_github_format(capsys):
    assert main(["check", "--format", "github"]) == 0
    out = capsys.readouterr().out
    assert out.startswith("::notice")


def test_render_github_one_annotation_per_finding_with_rule_in_title(tmp_path):
    from repro.devtools import render_github

    pkg = tmp_path / "repro"
    pkg.mkdir()
    (pkg / "__init__.py").write_text("")
    (pkg / "mod.py").write_text(
        "def f(x):\n    return x == 0.25\n\n\ndef g(y):\n    return y != 1.5\n"
    )
    findings_report = run_check(tmp_path, baseline=Baseline())
    out = render_github(findings_report)
    annotations = [l for l in out.splitlines() if l.startswith("::")]
    # Exactly one annotation per finding — no summary collapsing, no dupes.
    assert len(annotations) == len(findings_report.findings) == 2
    for line in annotations:
        assert "title=NUM001" in line


def test_render_github_baselined_findings_become_notices(tmp_path):
    from repro.devtools import BaselineEntry, render_github

    pkg = tmp_path / "repro"
    pkg.mkdir()
    (pkg / "__init__.py").write_text("")
    (pkg / "mod.py").write_text("def f(x):\n    return x == 0.25\n")
    live = run_check(tmp_path, baseline=Baseline())
    assert live.findings
    baseline = Baseline(
        [BaselineEntry.from_finding(f, "legacy float compare") for f in live.findings]
    )
    muted = run_check(tmp_path, baseline=baseline)
    assert muted.ok and muted.baselined
    out = render_github(muted, baseline=baseline)
    notices = [l for l in out.splitlines() if l.startswith("::notice file=")]
    assert len(notices) == len(muted.baselined)
    assert "legacy float compare" in notices[0]
    assert "title=NUM001" in notices[0]
    # Without the baseline argument the muted findings stay invisible.
    assert "::notice file=" not in render_github(muted)


def test_rule_level_justification_covers_entries(tmp_path):
    from repro.devtools import BaselineEntry

    entry = BaselineEntry(rule="NUM001", path="repro/mod.py", message="m")
    baseline = Baseline([entry], rule_justifications={"NUM001": "audited 2026-08"})
    assert baseline.effective_justification(entry) == "audited 2026-08"
    own = BaselineEntry(rule="NUM001", path="repro/mod.py", message="m", justification="mine")
    assert baseline.effective_justification(own) == "mine"
    # Round-trips through save/load.
    path = tmp_path / "b.json"
    baseline.save(path)
    assert Baseline.load(path) == baseline


# ----------------------------------------------------------------------
# repro graph CLI
# ----------------------------------------------------------------------
def test_cli_graph_json(capsys):
    assert main(["graph"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["schema"] == 1
    assert payload["stats"]["resolution_rate"] >= 0.93
    assert payload["edges"]


def test_cli_graph_dot(capsys):
    assert main(["graph", "--format", "dot"]) == 0
    out = capsys.readouterr().out
    assert out.startswith("digraph callgraph {")
    assert "->" in out


def test_cli_graph_units_table(capsys):
    assert main(["graph", "--units"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["schema"] == 1
    # the annotated library surface is in the table
    assert any("power" in key for key in payload["functions"])
