"""Declarative fleet scenarios.

A :class:`Scenario` is a pure-data description of one campaign: the
node inventory, the arrival process, the facility power budget (with an
optional time-varying price/carbon signal), the failure plan, and the
serving configuration.  Everything downstream —
:class:`~repro.fleet.simulator.FleetSimulator`, the CLI, the golden
suite — consumes scenarios, so a campaign is reproducible from
``(scenario name, seed)`` alone.

The named scenarios:

* ``baseline``    — mixed GA100/GV100 fleet, steady arrivals, no cap,
* ``capped``      — baseline under a facility power cap modulated by a
  price signal,
* ``flash-crowd`` — a burst multiplies the arrival rate mid-campaign,
* ``node-churn``  — random node outages with requeue,
* ``day``         — one simulated day at scale (>= 1e5 selections);
  slow, used by the slow-marked campaign test.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

__all__ = [
    "NodeGroupSpec",
    "Surge",
    "ArrivalSpec",
    "SignalSpec",
    "FailureSpec",
    "Scenario",
    "get_scenario",
    "list_scenarios",
]

#: Mixed, fast-censusing applications used by the named scenarios.
_MIX = ("dgemm", "stream", "spmv", "lud", "fft", "bfs", "lstm", "resnet50")


@dataclass(frozen=True)
class NodeGroupSpec:
    """A homogeneous slice of the fleet."""

    arch: str  # "GA100" or "GV100"
    count: int
    gpus_per_node: int = 2

    def __post_init__(self) -> None:
        if self.arch not in ("GA100", "GV100"):
            raise ValueError(f"unknown arch {self.arch!r}")
        if self.count < 1 or self.gpus_per_node < 1:
            raise ValueError("count and gpus_per_node must be >= 1")


@dataclass(frozen=True)
class Surge:
    """Arrival-rate multiplier over a time window (a flash crowd)."""

    start_s: float
    end_s: float
    multiplier: float

    def __post_init__(self) -> None:
        if self.end_s <= self.start_s:
            raise ValueError("end_s must be after start_s")
        if self.multiplier <= 0:
            raise ValueError("multiplier must be positive")


@dataclass(frozen=True)
class ArrivalSpec:
    """Poisson arrival process over a fixed submission window."""

    #: Mean arrivals per second (before surges).
    rate_per_s: float
    #: Submission window; jobs arrive in [0, duration_s).
    duration_s: float
    workloads: tuple[str, ...] = _MIX
    #: Deadline = arrival + factor x noise-free boost-clock runtime
    #: (worst across fleet archs).  None disables SLAs.
    deadline_factor: float | None = 3.0
    surges: tuple[Surge, ...] = ()

    def __post_init__(self) -> None:
        if self.rate_per_s <= 0:
            raise ValueError("rate_per_s must be positive")
        if self.duration_s <= 0:
            raise ValueError("duration_s must be positive")
        if not self.workloads:
            raise ValueError("need at least one workload")
        if self.deadline_factor is not None and self.deadline_factor <= 0:
            raise ValueError("deadline_factor must be positive")


@dataclass(frozen=True)
class SignalSpec:
    """Time-varying price/carbon signal modulating the power cap.

    The signal yields a multiplicative factor on the facility cap:
    ``1 - amplitude`` at the signal's peak (expensive/dirty power →
    tighter cap), ``1 + amplitude`` in the trough.
    """

    kind: str = "price"  # "price" | "carbon" | "flat"
    period_s: float = 86400.0
    amplitude: float = 0.2
    phase_s: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in ("price", "carbon", "flat"):
            raise ValueError(f"unknown signal kind {self.kind!r}")
        if self.period_s <= 0:
            raise ValueError("period_s must be positive")
        if not 0.0 <= self.amplitude < 1.0:
            raise ValueError("amplitude must be in [0, 1)")


@dataclass(frozen=True)
class FailureSpec:
    """Failure-injection plan: explicit outages plus random churn."""

    #: Explicit (node_id, down_s, up_s|None) outage windows.
    outages: tuple[tuple[int, float, float | None], ...] = ()
    #: Number of additional outages drawn from the failure RNG.
    random_outages: int = 0
    mean_downtime_s: float = 120.0
    #: Random outages start inside this fraction of the submission
    #: window (so a node can still come back while work remains).
    window: tuple[float, float] = (0.05, 0.7)

    def __post_init__(self) -> None:
        if self.random_outages < 0:
            raise ValueError("random_outages must be non-negative")
        if self.mean_downtime_s <= 0:
            raise ValueError("mean_downtime_s must be positive")
        lo, hi = self.window
        if not 0.0 <= lo < hi <= 1.0:
            raise ValueError("window must satisfy 0 <= lo < hi <= 1")


@dataclass(frozen=True)
class Scenario:
    """One complete fleet campaign description."""

    name: str
    description: str
    node_groups: tuple[NodeGroupSpec, ...]
    arrival: ArrivalSpec
    #: Facility GPU power budget (busy power, W); None = uncapped.
    cap_w: float | None = None
    signal: SignalSpec | None = None
    failures: FailureSpec = field(default_factory=FailureSpec)
    tick_s: float = 30.0
    objective: str = "ED2P"
    threshold: float | None = None
    #: Serving configuration for the per-node services.
    quantize_decimals: int = 3
    cache_size: int = 512
    fused: bool = True
    max_samples_per_run: int = 4

    def __post_init__(self) -> None:
        if not self.node_groups:
            raise ValueError("need at least one node group")
        if self.cap_w is not None and self.cap_w <= 0:
            raise ValueError("cap_w must be positive")
        if self.tick_s <= 0:
            raise ValueError("tick_s must be positive")

    @property
    def n_nodes(self) -> int:
        return sum(g.count for g in self.node_groups)

    @property
    def n_gpus(self) -> int:
        return sum(g.count * g.gpus_per_node for g in self.node_groups)

    def scaled(self, *, rate_factor: float = 1.0, duration_factor: float = 1.0) -> "Scenario":
        """A copy with the arrival process scaled (for quick tests)."""
        arrival = dataclasses.replace(
            self.arrival,
            rate_per_s=self.arrival.rate_per_s * rate_factor,
            duration_s=self.arrival.duration_s * duration_factor,
        )
        return dataclasses.replace(self, arrival=arrival)


_BASE_GROUPS = (
    NodeGroupSpec(arch="GA100", count=6, gpus_per_node=2),
    NodeGroupSpec(arch="GV100", count=2, gpus_per_node=2),
)

_SCENARIOS: dict[str, Scenario] = {}


def _register(scenario: Scenario) -> Scenario:
    _SCENARIOS[scenario.name] = scenario
    return scenario


BASELINE = _register(
    Scenario(
        name="baseline",
        description="mixed GA100/GV100 fleet, steady arrivals, no power cap",
        node_groups=_BASE_GROUPS,
        arrival=ArrivalSpec(rate_per_s=2.0, duration_s=900.0),
    )
)

CAPPED = _register(
    Scenario(
        name="capped",
        description="baseline fleet under a price-modulated facility power cap",
        node_groups=_BASE_GROUPS,
        arrival=ArrivalSpec(rate_per_s=2.0, duration_s=900.0),
        cap_w=1200.0,
        signal=SignalSpec(kind="price", period_s=900.0, amplitude=0.25),
    )
)

FLASH_CROWD = _register(
    Scenario(
        name="flash-crowd",
        description="a mid-campaign burst multiplies the arrival rate 8x",
        node_groups=_BASE_GROUPS,
        arrival=ArrivalSpec(
            rate_per_s=0.4,
            duration_s=900.0,
            surges=(Surge(start_s=300.0, end_s=450.0, multiplier=8.0),),
        ),
    )
)

NODE_CHURN = _register(
    Scenario(
        name="node-churn",
        description="random node outages mid-campaign with requeue",
        node_groups=_BASE_GROUPS,
        arrival=ArrivalSpec(rate_per_s=0.8, duration_s=900.0),
        failures=FailureSpec(random_outages=3, mean_downtime_s=150.0),
    )
)

DAY = _register(
    Scenario(
        name="day",
        description="one simulated day at scale (>= 1e5 selections); slow",
        node_groups=(
            NodeGroupSpec(arch="GA100", count=12, gpus_per_node=2),
            NodeGroupSpec(arch="GV100", count=4, gpus_per_node=2),
        ),
        arrival=ArrivalSpec(rate_per_s=1.3, duration_s=86400.0),
        signal=SignalSpec(kind="carbon", period_s=86400.0, amplitude=0.2),
        tick_s=300.0,
    )
)


def get_scenario(name: str) -> Scenario:
    """Named scenario lookup."""
    try:
        return _SCENARIOS[name]
    except KeyError:
        known = ", ".join(sorted(_SCENARIOS))
        raise KeyError(f"unknown scenario {name!r}; known: {known}") from None


def list_scenarios() -> list[Scenario]:
    """All named scenarios, name-sorted."""
    return [_SCENARIOS[name] for name in sorted(_SCENARIOS)]
