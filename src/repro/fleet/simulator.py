"""The fleet simulator: scenario in, deterministic metrics out.

:class:`FleetSimulator` assembles a campaign from a
:class:`~repro.fleet.scenario.Scenario` and a seed:

1. **Seed lineage** — one root ``SeedSequence(seed)`` spawns dedicated
   children for the arrival process, the failure plan, and every node
   (which in turn spawns per-board and service-device streams).  No
   component shares a stream, so results are invariant to node
   iteration order and to how many workers anything runs on.
2. **Fleet** — nodes + per-node services + the per-job
   :class:`~repro.fleet.services.FleetServicePolicy`, with an optional
   :class:`~repro.fleet.capping.PowerCapController` when the scenario
   carries a power budget.
3. **Campaign** — one :class:`~repro.cluster.engine.ClusterEngine` run:
   event queue + tick loop, outage injection, requeue.
4. **Metrics** — a flat, JSON-stable dict of fleet-level energy / SLA /
   EDP numbers (the golden suite pins it bitwise), with counters and
   histograms mirrored into :mod:`repro.obs` along the way.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro import obs
from repro.cluster.engine import ClusterEngine, EngineStats, TickView
from repro.cluster.job import Job, JobRecord
from repro.cluster.metrics import ClusterReport, power_series, summarize
from repro.core.energy import ED2P, EDP
from repro.fleet.arrivals import generate_jobs
from repro.fleet.capping import PowerCapController
from repro.fleet.failures import build_outages
from repro.fleet.scenario import Scenario
from repro.fleet.services import FleetServicePolicy, build_fleet

__all__ = ["FleetResult", "FleetSimulator"]

_OBJECTIVES = {"EDP": EDP, "ED2P": ED2P}


@dataclass
class FleetResult:
    """One completed campaign."""

    scenario: Scenario
    seed: int
    records: list[JobRecord]
    stats: EngineStats
    report: ClusterReport
    #: Selection-service aggregates across all nodes.
    selections_total: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    #: Admission-control aggregates (0 when the scenario is uncapped).
    capped_jobs: int = 0
    forced_admissions: int = 0
    outages_injected: int = 0
    jobs: list[Job] = field(default_factory=list)

    def metrics(self) -> dict:
        """Flat fleet-level metrics, stable across identical runs.

        Only simulation-domain quantities appear here — never wall
        time — so the dict is bitwise-reproducible from (scenario,
        seed) and safe to pin in the golden suite.
        """
        records = self.records
        waits = [r.wait_s for r in records]
        with_deadline = [r for r in records if r.deadline_s is not None]
        met = sum(1 for r in with_deadline if r.met_deadline)
        lookups = self.cache_hits + self.cache_misses
        _, series = power_series(records, resolution_s=self.scenario.tick_s)
        return {
            "schema": 1,
            "scenario": self.scenario.name,
            "seed": self.seed,
            "nodes": self.scenario.n_nodes,
            "gpus": self.scenario.n_gpus,
            "jobs_submitted": self.stats.jobs_submitted,
            "jobs_completed": self.stats.jobs_completed,
            "makespan_s": self.report.makespan_s,
            "total_energy_j": self.report.total_energy_j,
            "wasted_energy_j": self.stats.wasted_energy_j,
            "edp": self.report.total_energy_j * self.report.makespan_s,
            "mean_wait_s": float(np.mean(waits)) if waits else 0.0,
            "p95_wait_s": float(np.percentile(waits, 95)) if waits else 0.0,
            "avg_power_w": self.report.avg_power_w,
            "peak_power_w": float(series.max()) if series.size else 0.0,
            "mean_clock_mhz": float(np.mean([r.clock_mhz for r in records])) if records else 0.0,
            "deadline_jobs": len(with_deadline),
            "deadline_met": met,
            "deadline_met_fraction": met / len(with_deadline) if with_deadline else 1.0,
            "requeues": self.stats.requeues,
            "aborted_attempts": self.stats.aborted_attempts,
            "deferrals": self.stats.deferrals,
            "outages_injected": self.outages_injected,
            "capped_jobs": self.capped_jobs,
            "forced_admissions": self.forced_admissions,
            "selections_total": self.selections_total,
            "selection_cache_hits": self.cache_hits,
            "selection_cache_hit_rate": self.cache_hits / lookups if lookups else 0.0,
            "ticks": self.stats.ticks,
        }


class FleetSimulator:
    """Deterministic fleet campaign runner."""

    def __init__(self, scenario: Scenario, *, seed: int = 0) -> None:
        self.scenario = scenario
        self.seed = int(seed)
        try:
            self.objective = _OBJECTIVES[scenario.objective]
        except KeyError:
            raise ValueError(
                f"unknown objective {scenario.objective!r}; known: {sorted(_OBJECTIVES)}"
            ) from None
        registry = obs.get_registry()
        self._m_jobs = registry.counter("fleet_jobs_total", "fleet jobs completed")
        self._m_requeues = registry.counter("fleet_requeues_total", "failure-driven requeues")
        self._m_deferrals = registry.counter("fleet_deferrals_total", "capping deferrals")
        self._m_energy = registry.counter("fleet_energy_joules", "useful simulated GPU energy")
        self._m_wasted = registry.counter("fleet_wasted_joules", "energy of aborted attempts")
        self._m_wait = registry.histogram("fleet_wait_seconds", "per-job queue wait")
        self._m_power = registry.histogram(
            "fleet_busy_power_w", "per-tick in-flight busy power", buckets=_POWER_BUCKETS
        )
        self._m_queue = registry.histogram(
            "fleet_queue_depth", "per-tick pending queue depth", buckets=_DEPTH_BUCKETS
        )

    def run(self) -> FleetResult:
        """Run the campaign once."""
        scenario = self.scenario
        root = np.random.SeedSequence(self.seed)
        arrival_ss, failure_ss, node_root = root.spawn(3)

        with obs.span("fleet.build", scenario=scenario.name, nodes=scenario.n_nodes):
            nodes, services = build_fleet(scenario, node_root)
            policy = FleetServicePolicy(
                nodes, services, objective=self.objective, threshold=scenario.threshold
            )
            admission = None
            if scenario.cap_w is not None:
                admission = PowerCapController(scenario.cap_w, signal=scenario.signal)
            arch_names = tuple(g.arch for g in scenario.node_groups)
            jobs = generate_jobs(
                scenario.arrival,
                rng=np.random.default_rng(arrival_ss),
                arch_names=arch_names,
            )
            outages = build_outages(
                scenario.failures,
                node_ids=[n.node_id for n in nodes],
                duration_s=scenario.arrival.duration_s,
                rng=np.random.default_rng(failure_ss),
            )

        def on_tick(view: TickView) -> None:
            self._m_power.observe(view.busy_power_w)
            self._m_queue.observe(view.pending)

        engine = ClusterEngine(
            nodes,
            policy,
            admission=admission,
            outages=outages,
            tick_s=scenario.tick_s,
            on_tick=on_tick,
        )
        with obs.span(
            "fleet.campaign",
            scenario=scenario.name,
            seed=self.seed,
            jobs=len(jobs),
            nodes=scenario.n_nodes,
            gpus=scenario.n_gpus,
            cap_w=scenario.cap_w,
        ) as campaign_span:
            engine_result = engine.run(jobs)
            campaign_span.set(
                completed=engine_result.stats.jobs_completed,
                requeues=engine_result.stats.requeues,
                deferrals=engine_result.stats.deferrals,
                ticks=engine_result.stats.ticks,
            )

        records = engine_result.records
        stats = engine_result.stats
        with obs.span("fleet.aggregate", scenario=scenario.name) as agg_span:
            for record in records:
                self._m_wait.observe(record.wait_s)
            self._m_jobs.inc(stats.jobs_completed)
            self._m_requeues.inc(stats.requeues)
            self._m_deferrals.inc(stats.deferrals)
            self._m_energy.inc(sum(r.energy_j for r in records))
            self._m_wasted.inc(stats.wasted_energy_j)

            service_stats = [services[node_id].stats() for node_id in sorted(services)]
            agg_span.set(
                selections=sum(s.requests for s in service_stats),
                cache_hits=sum(s.cache_hits for s in service_stats),
                cache_misses=sum(s.cache_misses for s in service_stats),
            )
        result = FleetResult(
            scenario=scenario,
            seed=self.seed,
            records=records,
            stats=stats,
            report=summarize(policy.name, records),
            selections_total=sum(s.requests for s in service_stats),
            cache_hits=sum(s.cache_hits for s in service_stats),
            cache_misses=sum(s.cache_misses for s in service_stats),
            capped_jobs=admission.capped_jobs if admission is not None else 0,
            forced_admissions=admission.forced_admissions if admission is not None else 0,
            outages_injected=len(outages),
            jobs=jobs,
        )
        obs.annotate(
            fleet_scenario=scenario.name,
            fleet_seed=self.seed,
            fleet_jobs=stats.jobs_submitted,
            fleet_energy_j=result.report.total_energy_j,
        )
        return result


_POWER_BUCKETS = (100.0, 250.0, 500.0, 1000.0, 2000.0, 4000.0, 8000.0, 16000.0)
_DEPTH_BUCKETS = (1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 1000.0)
