"""Figure 3: mutual-information dependency of features on power & time.

Collects the 20 ms sample rows for DGEMM and STREAM across the DVFS
space (the dataset paper Section 4.2.1 uses), then ranks the 10
candidate features — the 12 collected metrics minus the two predictands —
against ``power_usage`` and ``exec_time`` with the KSG estimator.

Expected shape: {fp64_active (the micro-benchmarks' FP activity),
sm_app_clock, dram_active} carry the highest combined dependency, which
is exactly the paper's selected feature triple.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.context import ExperimentContext
from repro.experiments.report import render_table
from repro.features.selection import FeatureRanking, rank_features
from repro.telemetry.launch import LaunchConfig, Launcher
from repro.telemetry.profile import Profiler

__all__ = ["CANDIDATE_FEATURES", "Fig3Result", "run_fig3", "render_fig3"]

#: The 10 candidates of paper Fig. 3 (12 metrics minus the 2 predictands).
CANDIDATE_FEATURES: tuple[str, ...] = (
    "fp64_active",
    "fp32_active",
    "sm_app_clock",
    "dram_active",
    "gr_engine_active",
    "gpu_utilization",
    "sm_active",
    "sm_occupancy",
    "pcie_tx_bytes",
    "pcie_rx_bytes",
)


@dataclass(frozen=True)
class Fig3Result:
    """Rankings against both predictands plus the combined top-3."""

    power_ranking: FeatureRanking
    time_ranking: FeatureRanking
    selected: tuple[str, ...]


def _collect_rows(ctx: ExperimentContext) -> dict[str, np.ndarray]:
    device = ctx.device("GA100")
    launcher = Launcher(device)
    profiler = Profiler(device)
    config = LaunchConfig(
        freqs_mhz=tuple(device.dvfs.usable_mhz),
        runs_per_config=ctx.settings.runs_per_config,
    )
    workloads = [ctx.registry.get("dgemm"), ctx.registry.get("stream")]
    artifacts = launcher.collect(workloads, config)
    columns: dict[str, list[float]] = {name: [] for name in (*CANDIDATE_FEATURES, "power_usage", "exec_time")}
    for artifact in artifacts:
        for row in profiler.samples_as_rows(artifact.record):
            for name in columns:
                columns[name].append(row[name])
    return {name: np.asarray(vals) for name, vals in columns.items()}


def run_fig3(ctx: ExperimentContext, *, mi_subsample: int = 4000) -> Fig3Result:
    """Rank the candidate features; ``mi_subsample`` caps KSG cost.

    The KSG estimator is O(n log n) per pair but with a noticeable
    constant; a seeded subsample keeps the full-fidelity campaign fast
    without biasing the ranking.
    """
    columns = _collect_rows(ctx)
    n = columns["power_usage"].size
    if n > mi_subsample:
        idx = np.random.default_rng(ctx.settings.seed).choice(n, size=mi_subsample, replace=False)
        columns = {name: vals[idx] for name, vals in columns.items()}

    features = {name: columns[name] for name in CANDIDATE_FEATURES}
    power_ranking = rank_features(features, columns["power_usage"], target_name="power_usage")
    time_ranking = rank_features(features, columns["exec_time"], target_name="exec_time")

    combined = np.asarray(power_ranking.normalized()) + np.asarray(time_ranking.normalized())
    order = np.argsort(combined)[::-1]
    selected = tuple(CANDIDATE_FEATURES[i] for i in order[:3])
    return Fig3Result(power_ranking=power_ranking, time_ranking=time_ranking, selected=selected)


def render_fig3(result: Fig3Result) -> str:
    """Normalized MI bars for both predictands, Fig. 3 style."""
    p_norm = dict(zip(result.power_ranking.feature_names, result.power_ranking.normalized()))
    t_norm = dict(zip(result.time_ranking.feature_names, result.time_ranking.normalized()))
    rows = [[name, p_norm[name], t_norm[name]] for name in CANDIDATE_FEATURES]
    table = render_table(
        ["feature", "MI vs power (norm)", "MI vs time (norm)"],
        rows,
        title="Figure 3 - feature dependency for predicting power and time",
    )
    return table + f"\nSelected top-3: {', '.join(result.selected)}"
