"""Phase-aware prediction study (extension beyond the paper).

The paper profiles a whole run and averages the features.  For a
bimodal application — e.g. recommender training alternating memory-bound
embedding gathers with compute-bound MLP updates — the averaged features
describe an operating point no real kernel occupies, and the monolithic
prediction inherits that distortion.  Phase-aware prediction measures
each phase once at the default clock (still a single profiling run in
wall-clock terms) and composes per-phase curves.

Ground truth executes each phase at every clock and sums — what the real
application would do.

Expected shape: phase-aware time/power accuracy >= monolithic accuracy
on the bimodal app, with the gap concentrated at low clocks where the
phases diverge hardest.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.metrics import accuracy_percent
from repro.experiments.context import ExperimentContext
from repro.experiments.report import render_series, render_table
from repro.workloads.trace import PhasedWorkload, RecommenderTraining

__all__ = ["PhaseStudyResult", "run_phase_study", "render_phase_study"]


@dataclass(frozen=True)
class PhaseStudyResult:
    """Monolithic vs phase-aware accuracy for one bimodal app."""

    app: str
    freqs_mhz: np.ndarray
    time_measured_s: np.ndarray
    power_measured_w: np.ndarray
    time_monolithic_s: np.ndarray
    time_phased_s: np.ndarray
    power_monolithic_w: np.ndarray
    power_phased_w: np.ndarray

    @property
    def time_accuracy_monolithic(self) -> float:
        """Normalized-time accuracy of the whole-run prediction."""
        return accuracy_percent(
            self.time_measured_s / self.time_measured_s[-1],
            self.time_monolithic_s / self.time_monolithic_s[-1],
        )

    @property
    def time_accuracy_phased(self) -> float:
        """Normalized-time accuracy of the phase-aware prediction."""
        return accuracy_percent(
            self.time_measured_s / self.time_measured_s[-1],
            self.time_phased_s / self.time_phased_s[-1],
        )

    @property
    def power_accuracy_monolithic(self) -> float:
        """Power accuracy of the whole-run prediction."""
        return accuracy_percent(self.power_measured_w, self.power_monolithic_w)

    @property
    def power_accuracy_phased(self) -> float:
        """Power accuracy of the phase-aware prediction."""
        return accuracy_percent(self.power_measured_w, self.power_phased_w)


def _phased_truth(ctx: ExperimentContext, workload: PhasedWorkload) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Execute each phase at every clock and compose (the real app)."""
    device = ctx.device("GA100")
    freqs = device.dvfs.usable_array()
    runs = ctx.settings.truth_runs_per_config
    time = np.zeros(freqs.size)
    energy = np.zeros(freqs.size)
    for phase in workload.phases():
        for i, f in enumerate(freqs):
            records = [device.run_at(phase.census, f, workload_name=phase.name) for _ in range(runs)]
            t = float(np.mean([r.exec_time_s for r in records]))
            p = float(np.mean([r.mean_power_w for r in records]))
            time[i] += t
            energy[i] += p * t
    return freqs, time, energy / time


def run_phase_study(ctx: ExperimentContext) -> PhaseStudyResult:
    """Monolithic vs phase-aware prediction on the recommender app."""
    workload = RecommenderTraining()
    pipe = ctx.pipeline("GA100")

    freqs, t_meas, p_meas = _phased_truth(ctx, workload)
    mono = pipe.run_online(workload)
    phased = pipe.run_online_phased(workload)
    if not np.allclose(mono.freqs_mhz, freqs):
        raise RuntimeError("clock grids disagree")

    return PhaseStudyResult(
        app=workload.name,
        freqs_mhz=freqs,
        time_measured_s=t_meas,
        power_measured_w=p_meas,
        time_monolithic_s=mono.time_s,
        time_phased_s=phased.time_s,
        power_monolithic_w=mono.power_w,
        power_phased_w=phased.power_w,
    )


def render_phase_study(result: PhaseStudyResult) -> str:
    """Accuracy comparison plus the normalized time curves."""
    table = render_table(
        ["prediction", "time acc (%)", "power acc (%)"],
        [
            ["monolithic (paper)", result.time_accuracy_monolithic, result.power_accuracy_monolithic],
            ["phase-aware", result.time_accuracy_phased, result.power_accuracy_phased],
        ],
        title=f"Phase study - whole-run vs phase-aware prediction ({result.app}, GA100)",
    )
    lines = [
        table,
        render_series("measured T/Tmax", result.freqs_mhz, result.time_measured_s / result.time_measured_s[-1]),
        render_series("monolithic T/Tmax", result.freqs_mhz, result.time_monolithic_s / result.time_monolithic_s[-1]),
        render_series("phase-aware T/Tmax", result.freqs_mhz, result.time_phased_s / result.time_phased_s[-1]),
    ]
    return "\n".join(lines)
