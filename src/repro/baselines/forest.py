"""Random forest regressor (the paper's RFR baseline)."""

from __future__ import annotations

import numpy as np

from repro.baselines.tree import DecisionTreeRegressor

__all__ = ["RandomForestRegressor"]


class RandomForestRegressor:
    """Bagged, feature-subsampled CART ensemble.

    Each tree trains on a bootstrap resample and examines
    ``max_features`` (default: all features / 3, the regression
    convention) candidate features per split.  Prediction is the mean of
    the per-tree predictions.
    """

    def __init__(
        self,
        n_estimators: int = 100,
        *,
        max_depth: int | None = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: int | str | None = "third",
        bootstrap: bool = True,
        seed: int | None = None,
    ) -> None:
        if n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.bootstrap = bootstrap
        self.seed = seed
        self.trees_: list[DecisionTreeRegressor] = []

    def _resolve_max_features(self, n_features: int) -> int | None:
        if self.max_features is None:
            return None
        if self.max_features == "third":
            return max(1, n_features // 3)
        if self.max_features == "sqrt":
            return max(1, int(np.sqrt(n_features)))
        if isinstance(self.max_features, int):
            if not 1 <= self.max_features <= n_features:
                raise ValueError(f"max_features must be in [1, {n_features}]")
            return self.max_features
        raise ValueError(f"unsupported max_features {self.max_features!r}")

    def fit(self, x: np.ndarray, y: np.ndarray) -> "RandomForestRegressor":
        """Train all trees; returns self."""
        x = np.atleast_2d(np.asarray(x, dtype=float))
        y = np.asarray(y, dtype=float).reshape(-1)
        if x.shape[0] != y.size:
            raise ValueError(f"X has {x.shape[0]} rows but y has {y.size}")
        rng = np.random.default_rng(self.seed)
        max_features = self._resolve_max_features(x.shape[1])
        self.trees_ = []
        n = x.shape[0]
        for _ in range(self.n_estimators):
            tree = DecisionTreeRegressor(
                max_depth=self.max_depth,
                min_samples_split=self.min_samples_split,
                min_samples_leaf=self.min_samples_leaf,
                max_features=max_features,
                rng=np.random.default_rng(rng.integers(2**63)),
            )
            if self.bootstrap:
                sample = rng.integers(0, n, size=n)
                tree.fit(x[sample], y[sample])
            else:
                tree.fit(x, y)
            self.trees_.append(tree)
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Ensemble-mean prediction."""
        if not self.trees_:
            raise RuntimeError("predict called before fit")
        preds = np.stack([tree.predict(x) for tree in self.trees_])
        return preds.mean(axis=0)
