"""Ablation: training-set size (how much of SPEC ACCEL is needed?).

Shape assertions: accuracy grows with workload count and saturates near
the full 21-workload suite; the 2-anchor (DGEMM+STREAM only) model is
clearly worse on unseen applications.
"""

import pytest

from repro.experiments.ablations import render_ablation, run_training_set_ablation


@pytest.fixture(scope="module")
def rows(ctx, suite):
    return run_training_set_ablation(ctx, suite=suite)


def test_training_set_ablation_report(benchmark, rows, report):
    benchmark(render_ablation, "Ablation: training-set size (power model)", rows)
    report("Ablation - training-set size", render_ablation("Ablation: training-set size (power model)", rows))


def test_five_sizes(rows):
    assert [r.variant for r in rows] == [f"{k} workloads" for k in (2, 5, 9, 15, 21)]


def test_anchors_alone_insufficient(rows):
    accs = {r.variant: r.eval_accuracy for r in rows}
    assert accs["2 workloads"] < accs["21 workloads"]


def test_saturation_by_mid_size(rows):
    """Most of the benefit arrives well before 21 workloads."""
    accs = {r.variant: r.eval_accuracy for r in rows}
    assert accs["15 workloads"] > accs["21 workloads"] - 4.0
