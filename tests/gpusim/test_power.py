"""Power-model tests: calibration anchors, monotonicity, clamping."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpusim import GA100, GV100, PowerCoefficients, PowerModel
from repro.gpusim.power import _COMPUTE_ANCHOR, _MEMORY_ANCHOR


@pytest.fixture()
def model() -> PowerModel:
    return PowerModel(GA100)


class TestCalibration:
    def test_compute_anchor_reaches_target(self, model):
        """Paper Fig. 1 (a): compute-bound work draws ~100% TDP at f_max."""
        fp, dram, sm = _COMPUTE_ANCHOR
        p = model.power(1410.0, fp_active=fp, dram_active=dram, sm_active=sm)
        assert p == pytest.approx(GA100.tdp_watts, rel=0.01)

    def test_memory_anchor_reaches_target(self, model):
        """Paper Fig. 1 (e): memory-bound work draws ~50% TDP at f_max."""
        fp, dram, sm = _MEMORY_ANCHOR
        p = model.power(1410.0, fp_active=fp, dram_active=dram, sm_active=sm)
        assert p == pytest.approx(0.5 * GA100.tdp_watts, rel=0.01)

    def test_coefficients_positive(self):
        c = PowerCoefficients.calibrate(GA100)
        assert c.c_fp_watts > 0
        assert c.c_dram_watts > 0
        assert c.c_sm_watts > 0

    def test_gv100_calibration_scales_with_tdp(self):
        ga = PowerCoefficients.calibrate(GA100)
        gv = PowerCoefficients.calibrate(GV100)
        assert gv.c_fp_watts / ga.c_fp_watts == pytest.approx(250.0 / 500.0, rel=0.01)

    def test_inconsistent_anchors_rejected(self):
        with pytest.raises(ValueError, match="fraction"):
            PowerCoefficients.calibrate(GA100, compute_power_fraction=0.4, memory_power_fraction=0.5)

    def test_negative_coefficient_rejected_in_dataclass(self):
        with pytest.raises(ValueError, match="c_fp_watts"):
            PowerCoefficients(c_fp_watts=-1.0, c_dram_watts=1.0, c_sm_watts=1.0)


class TestPowerBehaviour:
    def test_idle_floor(self, model):
        p = model.power(510.0, fp_active=0.0, dram_active=0.0, sm_active=0.0)
        assert p == pytest.approx(GA100.idle_power_watts)

    def test_low_clock_power_near_one_fifth_tdp(self, model):
        """Paper Section 2: lowest-clock power ~1/5 of TDP for busy kernels."""
        fp, dram, sm = _COMPUTE_ANCHOR
        p = model.power(510.0, fp_active=fp, dram_active=dram, sm_active=sm)
        assert 0.12 * GA100.tdp_watts < p < 0.33 * GA100.tdp_watts

    def test_tdp_clamp(self, model):
        p = model.power(1410.0, fp_active=1.0, dram_active=1.0, sm_active=1.0)
        assert p <= GA100.tdp_watts

    def test_activity_clipping(self, model):
        """Out-of-range activities are clipped, not propagated."""
        p_over = model.power(1000.0, fp_active=2.0, dram_active=0.5, sm_active=0.5)
        p_one = model.power(1000.0, fp_active=1.0, dram_active=0.5, sm_active=0.5)
        assert p_over == pytest.approx(p_one)

    def test_vectorized_over_clock_grid(self, model):
        freqs = np.linspace(510.0, 1410.0, 61)
        p = model.power(freqs, fp_active=0.8, dram_active=0.3, sm_active=0.9)
        assert p.shape == (61,)
        assert np.all(np.diff(p) >= -1e-9)

    @given(
        f=st.floats(min_value=510.0, max_value=1410.0),
        fp=st.floats(min_value=0.0, max_value=1.0),
        dram=st.floats(min_value=0.0, max_value=1.0),
        sm=st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_power_within_physical_envelope(self, model, f, fp, dram, sm):
        p = model.power(f, fp_active=fp, dram_active=dram, sm_active=sm)
        assert GA100.idle_power_watts - 1e-9 <= p <= GA100.tdp_watts + 1e-9

    @given(
        fp1=st.floats(min_value=0.0, max_value=1.0),
        fp2=st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_power_monotone_in_fp_activity(self, model, fp1, fp2):
        lo, hi = min(fp1, fp2), max(fp1, fp2)
        p_lo = model.power(1200.0, fp_active=lo, dram_active=0.3, sm_active=0.5)
        p_hi = model.power(1200.0, fp_active=hi, dram_active=0.3, sm_active=0.5)
        assert p_lo <= p_hi + 1e-9


class TestBreakdownIntegration:
    def test_power_from_breakdown(self, model, compute_census):
        from repro.gpusim import TimingModel

        bd = TimingModel(GA100).evaluate(compute_census, 1410.0)
        p = model.power_from_breakdown(bd)
        direct = model.power(
            1410.0, fp_active=bd.fp_active, dram_active=bd.dram_active, sm_active=bd.sm_active
        )
        assert p == pytest.approx(direct)

    def test_idle_power_accessor(self, model):
        assert model.idle_power() == GA100.idle_power_watts
