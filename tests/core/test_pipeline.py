"""End-to-end pipeline tests using the shared fast context."""

import numpy as np
import pytest

from repro.core import ED2P, EDP, EDnP, FrequencySelectionPipeline, accuracy_percent
from repro.gpusim import GA100, SimulatedGPU
from repro.workloads import get_workload


class TestOfflinePhase:
    def test_context_pipeline_is_fitted(self, fast_ctx):
        pipe = fast_ctx.pipeline("GA100")
        assert pipe.is_fitted
        assert pipe.training_dataset is not None

    def test_training_dataset_covers_21_workloads(self, fast_ctx):
        ds = fast_ctx.pipeline("GA100").training_dataset
        assert len(ds.workload_names) == 21

    def test_training_dataset_covers_61_clocks(self, fast_ctx):
        ds = fast_ctx.pipeline("GA100").training_dataset
        clocks = np.unique(ds.x[:, 2])
        assert clocks.size == 61

    def test_unfitted_pipeline_rejects_online(self):
        pipe = FrequencySelectionPipeline(SimulatedGPU(GA100, seed=0))
        with pytest.raises(RuntimeError, match="fit_offline"):
            pipe.run_online(get_workload("lstm"))

    def test_fit_from_dataset(self, fast_ctx):
        ds = fast_ctx.pipeline("GA100").training_dataset
        pipe = FrequencySelectionPipeline(SimulatedGPU(GA100, seed=1), seed=1)
        pipe.power_model.epochs = 5
        pipe.time_model.epochs = 5
        pipe.fit_from_dataset(ds)
        assert pipe.is_fitted


class TestOnlinePhase:
    def test_online_result_structure(self, fast_ctx):
        pipe = fast_ctx.pipeline("GA100")
        res = pipe.run_online(get_workload("lammps"))
        n = res.freqs_mhz.size
        assert n == 61
        assert res.power_w.shape == (n,)
        assert res.time_s.shape == (n,)
        assert np.allclose(res.energy_j, res.power_w * res.time_s)
        assert set(res.selections) == {"EDP", "ED2P"}

    def test_selection_lookup(self, fast_ctx):
        res = fast_ctx.pipeline("GA100").run_online(get_workload("lammps"))
        assert res.selection("EDP").objective_name == "EDP"
        with pytest.raises(KeyError, match="available"):
            res.selection("ED9P")

    def test_custom_objectives(self, fast_ctx):
        pipe = fast_ctx.pipeline("GA100")
        res = pipe.run_online(get_workload("lstm"), objectives=(EDnP(3.0),))
        assert "ED3P" in res.selections

    def test_threshold_propagates(self, fast_ctx):
        pipe = fast_ctx.pipeline("GA100")
        res = pipe.run_online(get_workload("resnet50"), objectives=(EDP,), threshold=0.01)
        assert res.selection("EDP").perf_degradation < 0.01

    def test_predictions_track_measurements(self, fast_ctx):
        """Online predictions must be within ~25% of brute-force truth."""
        pipe = fast_ctx.pipeline("GA100")
        res = pipe.run_online(get_workload("namd"))
        truth = fast_ctx.truth_sweep("namd", "GA100")
        freqs, p_meas = truth.mean_curve("power")
        assert accuracy_percent(p_meas, res.power_w) > 75.0

    def test_selected_frequency_below_max_for_most_apps(self, fast_ctx):
        pipe = fast_ctx.pipeline("GA100")
        below = 0
        for name in ("lammps", "lstm", "resnet50", "gromacs"):
            res = pipe.run_online(get_workload(name))
            if res.selection("EDP").freq_mhz < 1410.0:
                below += 1
        assert below >= 3

    def test_measured_time_at_max_positive(self, fast_ctx):
        res = fast_ctx.pipeline("GA100").run_online(get_workload("bert"))
        assert res.measured_time_at_max_s > 0
        assert res.measured_power_at_max_w > 0


class TestPortability:
    def test_gv100_pipeline_shares_models(self, fast_ctx):
        ga = fast_ctx.pipeline("GA100")
        gv = fast_ctx.pipeline("GV100")
        assert gv.power_model is ga.power_model
        assert gv.time_model is ga.time_model

    def test_gv100_grid_has_117_clocks(self, fast_ctx):
        res = fast_ctx.pipeline("GV100").run_online(get_workload("lstm"))
        assert res.freqs_mhz.size == 117

    def test_gv100_power_scale_is_volta(self, fast_ctx):
        """TDP-rescaled predictions must be in the 250 W envelope."""
        res = fast_ctx.pipeline("GV100").run_online(get_workload("bert"))
        assert np.max(res.power_w) < 300.0

    def test_measure_sweep_matches_grid(self, fast_ctx):
        truth = fast_ctx.truth_sweep("lstm", "GV100")
        freqs, _ = truth.mean_curve("power")
        assert freqs.size == 117
