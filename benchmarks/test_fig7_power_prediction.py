"""Figure 7: predicted vs measured power for the six real applications.

Shape assertions: high per-app accuracy (paper: >96 % on GA100; the
simulated floor is set lower because launch-bound apps drift), and the
prediction itself is fast (paper: ~0.2 s).
"""

import numpy as np
import pytest

from repro.experiments.fig7 import render_fig7, run_fig7
from repro.workloads import get_workload


@pytest.fixture(scope="module")
def fig7(ctx, suite):
    return run_fig7(ctx, suite=suite)


def test_fig7_report(benchmark, fig7, report):
    benchmark(render_fig7, fig7)
    report("Figure 7 - power prediction per app", render_fig7(fig7))


def test_fig7_accuracy_floors(fig7):
    accs = {ev.app: ev.power_accuracy for ev in fig7.evaluations}
    for app, acc in accs.items():
        assert acc > 80.0, f"{app}: {acc:.1f}%"
    assert np.mean(list(accs.values())) > 88.0


def test_fig7_curves_monotone_in_clock(fig7):
    for ev in fig7.evaluations:
        # Predicted power must rise with clock overall.
        assert ev.power_predicted_w[-1] > ev.power_predicted_w[0]


def test_fig7_online_prediction_latency(benchmark, ctx):
    """The paper reports ~0.2 s for power+time prediction."""
    pipe = ctx.pipeline("GA100")
    benchmark(pipe.run_online, get_workload("lammps"))
