"""First-order thermal model with clock throttling.

The board is a single thermal RC node: junction temperature relaxes
toward ``ambient + R_th * P`` with time constant ``tau = R_th * C_th``.
When the junction would exceed the throttle limit, the device drops to
the highest clock whose steady-state temperature stays under the limit —
the behaviour real datacenter GPUs exhibit under sustained TDP loads and
a real confound for DVFS studies (the paper avoided it with exclusive
node access and per-run cooldowns; the simulator lets you study it).

All of the transient math is closed-form:

``T(t) = T_ss + (T_0 - T_ss) * exp(-t / tau)``

so crossing times come from a logarithm, not an ODE integrator.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["ThermalModel"]


@dataclass
class ThermalModel:
    """Single-node RC thermal model with a hard throttle limit."""

    #: Inlet/ambient temperature, Celsius.
    ambient_c: float = 30.0
    #: Junction-to-ambient thermal resistance, C/W.  The default puts a
    #: 500 W board at 95 C steady state — above the 90 C limit, so a
    #: sustained TDP load eventually throttles (as SXM boards do under
    #: marginal cooling).
    thermal_resistance_c_per_w: float = 0.13
    #: Lumped heat capacity, J/C; with the default resistance this gives
    #: a ~44 s thermal time constant.
    thermal_capacitance_j_per_c: float = 400.0
    #: Junction temperature at which hardware throttling engages.
    throttle_limit_c: float = 90.0

    def __post_init__(self) -> None:
        if self.thermal_resistance_c_per_w <= 0:
            raise ValueError("thermal_resistance_c_per_w must be positive")
        if self.thermal_capacitance_j_per_c <= 0:
            raise ValueError("thermal_capacitance_j_per_c must be positive")
        if self.throttle_limit_c <= self.ambient_c:
            raise ValueError("throttle_limit_c must exceed ambient_c")

    @property
    def time_constant_s(self) -> float:
        """RC time constant tau in seconds."""
        return self.thermal_resistance_c_per_w * self.thermal_capacitance_j_per_c

    # ------------------------------------------------------------------
    def steady_state_c(self, power_w: float) -> float:
        """Equilibrium junction temperature under constant power."""
        if power_w < 0:
            raise ValueError("power_w must be non-negative")
        return self.ambient_c + self.thermal_resistance_c_per_w * power_w

    def max_sustainable_power_w(self) -> float:
        """Largest constant power that never throttles."""
        return (self.throttle_limit_c - self.ambient_c) / self.thermal_resistance_c_per_w

    def evolve(self, temp_c: float, power_w: float, duration_s: float) -> float:
        """Temperature after ``duration_s`` under constant power."""
        if duration_s < 0:
            raise ValueError("duration_s must be non-negative")
        t_ss = self.steady_state_c(power_w)
        return float(t_ss + (temp_c - t_ss) * np.exp(-duration_s / self.time_constant_s))

    def time_to_reach(self, temp_c: float, power_w: float, target_c: float) -> float:
        """Seconds until the junction reaches ``target_c`` (inf if never).

        Only meaningful when heating toward a steady state above the
        target; cooling toward or past the target returns inf.
        """
        t_ss = self.steady_state_c(power_w)
        if temp_c >= target_c:
            return 0.0
        if t_ss <= target_c:
            return float("inf")
        return float(self.time_constant_s * np.log((t_ss - temp_c) / (t_ss - target_c)))

    def would_throttle(self, power_w: float) -> bool:
        """Whether constant ``power_w`` eventually hits the limit."""
        return self.steady_state_c(power_w) > self.throttle_limit_c
