"""Core voltage as a function of SM clock.

Real GPUs run a voltage/frequency table: below some clock the core sits at
its minimum stable voltage, above it the voltage ramps (roughly linearly,
slightly super-linearly near the top bin) to the boost voltage.  Because
dynamic power scales with ``V^2 * f``, this curve is what bends the
power-vs-frequency plot from linear into the convex shape seen in paper
Figure 1 (a)/(e).

The curve also exposes a per-step override hook so the paper's stated
future work — exploring the *voltage* design space — has a concrete
experiment surface (see ``examples/voltage_exploration.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.gpusim.arch import GPUArchitecture

__all__ = ["VoltageCurve"]


@dataclass
class VoltageCurve:
    """Piecewise voltage/frequency curve for one architecture.

    ``V(f) = v_min``                                     for f <= knee
    ``V(f) = v_min + (v_max - v_min) * x ** gamma``      for f  > knee

    with ``x`` the knee-relative normalized clock and ``gamma`` slightly
    above 1 to capture the steeper ramp near the top bins.
    """

    arch: GPUArchitecture
    #: Curvature of the ramp segment; 1.0 = linear.
    gamma: float = 1.15
    #: Optional per-clock overrides (MHz -> volts) for undervolting studies.
    overrides: dict[float, float] | None = None

    def __post_init__(self) -> None:
        if self.gamma <= 0:
            raise ValueError("gamma must be positive")
        self._knee_mhz = self.arch.voltage_knee_fraction * self.arch.core_freq_max_mhz

    @property
    def knee_mhz(self) -> float:
        """Clock below which voltage sits at the floor."""
        return self._knee_mhz

    def volts(self, freq_mhz: float | np.ndarray) -> np.ndarray | float:
        """Core voltage at the given clock(s)."""
        f = np.asarray(freq_mhz, dtype=float)
        scalar = f.ndim == 0
        f = np.atleast_1d(f)
        out = np.full_like(f, self.arch.voltage_min)
        span = self.arch.core_freq_max_mhz - self._knee_mhz
        ramp = f > self._knee_mhz
        x = np.clip((f[ramp] - self._knee_mhz) / span, 0.0, 1.0)
        out[ramp] = self.arch.voltage_min + (self.arch.voltage_max - self.arch.voltage_min) * x**self.gamma
        if self.overrides:
            for mhz, v in self.overrides.items():
                out[np.abs(f - mhz) <= 1e-6] = v
        return float(out[0]) if scalar else out

    def set_override(self, freq_mhz: float, volts: float) -> None:
        """Pin the voltage at one clock (undervolt/overvolt what-if)."""
        if volts <= 0:
            raise ValueError("voltage must be positive")
        if self.overrides is None:
            self.overrides = {}
        self.overrides[float(freq_mhz)] = float(volts)

    def clear_overrides(self) -> None:
        """Remove all per-clock overrides."""
        self.overrides = None

    def dynamic_power_factor(self, freq_mhz: float | np.ndarray) -> np.ndarray | float:
        """Normalized ``V(f)^2 * f`` factor (1.0 at the maximum clock).

        This is the multiplier the power model applies to per-unit dynamic
        power coefficients.
        """
        f = np.asarray(freq_mhz, dtype=float)
        v = np.asarray(self.volts(f), dtype=float)
        top = self.arch.voltage_max**2 * self.arch.core_freq_max_mhz
        return (v**2 * f) / top
