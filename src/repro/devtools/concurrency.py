"""Interprocedural thread-context and resource analysis.

The per-file THR001 rule enforces one lexical pattern — lock-owning
classes mutate their attributes under ``with self._lock:`` — but the
repo's real concurrency surface is interprocedural: a
:class:`~repro.serving.microbatch.MicroBatcher` dispatcher thread calls
into the service, a forked :class:`~repro.serving.engine.ShardPool`
worker rebuilds models over shared memory, and the metrics registry is
written from every one of those contexts at once.  This module builds
the whole-program view those rules need, on top of the existing
:class:`~repro.devtools.graph.ProjectIndex` / call graph:

* **Execution-context lattice** — every function gets a subset of
  ``{main, thread, fork}``.  Seeds: ``threading.Thread``/``Timer``
  targets and ``executor.submit`` callees run in *thread* context,
  ``multiprocessing`` ``Process`` targets run in *fork* context, and
  everything that is not exclusively an entry target is callable from
  *main*.  Contexts propagate caller -> callee over resolved call edges
  to a fixpoint, so ``MicroBatcher._run -> select_many -> flush`` marks
  the whole chain as thread-entered.
* **Shared-state access map** — per class, which ``self`` attributes are
  accessed from more than one context, and whether each *mutation*
  lexically holds one of the class's locks (THR002's evidence).
* **Lock-order graph** — directed edges ``A -> B`` whenever lock B is
  acquired (lexically, or transitively through a resolved call) while A
  is held; a cycle is an inversion (THR003's evidence).
* **Fork-capture scan** — at every ``Process(...)`` spawn site, the
  values bound into the child: locks, open file handles, RNG state, or
  a bound method whose instance owns them (THR004's evidence).

The analysis is built once per :class:`ProjectIndex` and cached on it,
so the four consuming rules share one fixpoint per ``repro check`` run.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.devtools.context import ModuleContext
from repro.devtools.rules.locking import (
    _CONSTRUCTION_METHODS,
    _LOCK_FACTORIES,
    _mutation_targets,
    _self_attr,
)

if TYPE_CHECKING:  # the index type; imported lazily to keep layering flat
    from repro.devtools.graph import ProjectIndex

__all__ = [
    "CONTEXTS",
    "AttrAccess",
    "ConcurrencyAnalysis",
    "EntryPoint",
    "ForkCapture",
    "LockAcquisition",
    "get_analysis",
]

#: The context lattice: every function maps to a subset of these.
CONTEXTS = ("main", "thread", "fork")

#: Call targets that register a *thread* entry point, by trailing match.
_THREAD_FACTORIES = ("threading.Thread", "threading.Timer")
#: Attribute spellings that register entries when the receiver type is
#: opaque (``ctx.Process`` where ``ctx = get_context('fork')``).
_PROCESS_ATTRS = frozenset({"Process"})
_SUBMIT_ATTRS = frozenset({"submit"})

#: Factories whose results are unsafe to capture across ``fork`` and the
#: kind THR004 reports for each.
_FORK_UNSAFE_FACTORIES: dict[str, str] = {
    "threading.Lock": "lock",
    "threading.RLock": "lock",
    "threading.Condition": "lock",
    "threading.Semaphore": "lock",
    "builtins.open": "open file handle",
    "io.open": "open file handle",
    "os.fdopen": "open file handle",
    "numpy.random.default_rng": "RNG state",
    "numpy.random.Generator": "RNG state",
    "numpy.random.RandomState": "RNG state",
    "multiprocessing.shared_memory.SharedMemory": "shared-memory handle",
}


# ----------------------------------------------------------------------
# Records
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class EntryPoint:
    """One registration of a function as a thread/fork entry."""

    target: str  #: qualname of the function run in the new context
    kind: str  #: "thread" | "fork"
    module: str
    line: int
    via: str  #: e.g. "threading.Thread(target=...)"


@dataclass(frozen=True)
class LockAcquisition:
    """Lock B acquired while lock A is held (one lock-order edge)."""

    held: str  #: lock id already held
    acquired: str  #: lock id being acquired
    module: str
    caller: str
    line: int
    col: int
    #: "" for a lexical nested ``with``; the callee qualname when the
    #: acquisition happens transitively through a resolved call.
    via_call: str = ""


@dataclass(frozen=True)
class AttrAccess:
    """One ``self.X`` access inside a method body."""

    class_qualname: str
    method: str
    attr: str
    line: int
    col: int
    is_store: bool
    #: Lock attrs of the class lexically held at this access.
    held_locks: frozenset[str]


@dataclass(frozen=True)
class ForkCapture:
    """One fork-unsafe value bound into a Process spawn."""

    module: str
    caller: str
    line: int
    col: int
    what: str  #: human-readable description of the captured value
    kind: str  #: "lock" | "open file handle" | "RNG state" | ...


# ----------------------------------------------------------------------
# Analysis
# ----------------------------------------------------------------------
class ConcurrencyAnalysis:
    """Whole-program concurrency facts over one :class:`ProjectIndex`."""

    def __init__(self, index: "ProjectIndex") -> None:
        self.index = index
        self.graph = index.call_graph()
        #: qualname -> frozenset of contexts the function can run in.
        self.contexts: dict[str, frozenset[str]] = {}
        self.entries: list[EntryPoint] = []
        #: class qualname -> lock-typed ``self`` attribute names.
        self.class_locks: dict[str, frozenset[str]] = {}
        #: module -> module-level names bound to lock factories.
        self.module_locks: dict[str, frozenset[str]] = {}
        self.lock_edges: list[LockAcquisition] = []
        #: class qualname -> every self-attribute access in its methods.
        self.class_accesses: dict[str, list[AttrAccess]] = {}
        #: class qualname -> attrs THR001 already guards (mutated under
        #: lock at least once) — THR002 leaves those to THR001.
        self.thr001_guarded: dict[str, frozenset[str]] = {}
        self.fork_captures: list[ForkCapture] = []
        #: (module, caller, line) of Process spawns under a held lock.
        self.fork_under_lock: list[LockAcquisition] = []
        #: Thread-reachable functions -> locks held on *every* thread path
        #: into them.  A non-empty set means the function is serialized by
        #: those locks; an empty set means it truly races with main.
        self.thread_serialized: dict[str, frozenset[str]] = {}
        #: Thread-reachable functions with at least one lock-free path.
        self.thread_racy: frozenset[str] = frozenset()
        #: Methods only reachable from their class's constructors
        #: (packing helpers etc.) — construction happens-before publication.
        self.construction_only: frozenset[str] = frozenset()
        #: Locks lexically held at each resolved call site (by id(site)).
        self._held_at_site: dict[int, frozenset[str]] = {}

        self._site_by_node: dict[int, object] = {
            id(s.node): s for s in self.graph.sites if s.node is not None
        }
        self._discover_locks()
        self._discover_entries()
        self._build_lock_order()
        self._infer_contexts()
        self._find_construction_only()
        self._scan_classes()
        self._scan_fork_captures()

    # -- lock discovery --------------------------------------------------
    def _discover_locks(self) -> None:
        for qual, cinfo in self.index.classes.items():
            ctx = self.index.modules[cinfo.module]
            locks: set[str] = set()
            for node in ast.walk(cinfo.node):
                if not isinstance(node, ast.Assign) or not isinstance(node.value, ast.Call):
                    continue
                if ctx.resolve(node.value.func) not in _LOCK_FACTORIES:
                    continue
                for target in node.targets:
                    attr = _self_attr(target)
                    if attr is not None:
                        locks.add(attr)
            if locks:
                self.class_locks[qual] = frozenset(locks)
        for module, ctx in self.index.modules.items():
            names: set[str] = set()
            for stmt in ctx.tree.body:
                if (
                    isinstance(stmt, ast.Assign)
                    and isinstance(stmt.value, ast.Call)
                    and ctx.resolve(stmt.value.func) in _LOCK_FACTORIES
                ):
                    for target in stmt.targets:
                        if isinstance(target, ast.Name):
                            names.add(target.id)
            if names:
                self.module_locks[module] = frozenset(names)

    # -- entry points ----------------------------------------------------
    def _discover_entries(self) -> None:
        for site in self.graph.sites:
            call = site.node
            if call is None:
                continue
            kind, target_expr, via = self._entry_of(site, call)
            if kind is None or target_expr is None:
                continue
            qual = self._resolve_callable_ref(target_expr, site)
            if qual is None:
                continue
            self.entries.append(
                EntryPoint(target=qual, kind=kind, module=site.module, line=call.lineno, via=via)
            )

    def _entry_of(self, site, call: ast.Call):
        """(kind, target expression, via) for a spawn/submit site, else Nones."""
        target = site.target or ""
        kw = {k.arg: k.value for k in call.keywords if k.arg is not None}
        if any(target.endswith(f) for f in _THREAD_FACTORIES):
            if target.endswith("Timer"):
                expr = kw.get("function") or (call.args[1] if len(call.args) > 1 else None)
            else:
                # Thread(group=None, target=None, ...): positional target is arg 1.
                expr = kw.get("target") or (call.args[1] if len(call.args) > 1 else None)
            return "thread", expr, f"{target}(...)"
        if target.endswith(".Process") or target.endswith("multiprocessing.Process"):
            expr = kw.get("target") or (call.args[1] if len(call.args) > 1 else None)
            return "fork", expr, f"{target}(...)"
        func = call.func
        if isinstance(func, ast.Attribute):
            if func.attr in _PROCESS_ATTRS and "target" in kw:
                return "fork", kw["target"], f"{ast.unparse(func)}(target=...)"
            if func.attr in _SUBMIT_ATTRS and call.args:
                return "thread", call.args[0], f"{ast.unparse(func)}(...)"
        return None, None, ""

    def _resolve_callable_ref(self, expr: ast.expr, site) -> str | None:
        """Project qualname of a function *reference* (not a call)."""
        ctx = self.index.modules.get(site.module)
        if ctx is None:
            return None
        caller_fn = self.index.functions.get(site.caller)
        scope = self.index._scope_for(caller_fn, ctx) if caller_fn is not None else {}
        if isinstance(expr, ast.Name):
            if caller_fn is not None:
                local = self.index._local_defs_for(caller_fn).get(expr.id)
                if local is not None:
                    return local
            qual = self.index.module_defs.get(ctx.module, {}).get(expr.id)
            if qual is None:
                origin = ctx.imports.get(expr.id)
                if origin is not None:
                    qual = self.index.resolve_name(origin)
            if qual is not None and qual in self.index.functions:
                return qual
            if qual is not None and qual in self.index.classes:
                call_method = self.index.lookup_method(qual, "__call__")
                return call_method.qualname if call_method is not None else None
            return None
        if isinstance(expr, ast.Attribute):
            base = self.index.value_type(expr.value, scope, ctx)
            if base is not None and base[0] in ("class", "type"):
                method = self.index.lookup_method(base[1], expr.attr)
                if method is not None:
                    return method.qualname
        return None

    # -- context fixpoint ------------------------------------------------
    def _infer_contexts(self) -> None:
        edges: dict[str, set[str]] = {}
        edge_sites: dict[str, list] = {}
        module_called: set[str] = set()
        for s in self.graph.edges:
            if s.target is None:
                continue
            if s.caller in self.index.functions:
                edges.setdefault(s.caller, set()).add(s.target)
                edge_sites.setdefault(s.caller, []).append(s)
            else:  # module-level code runs on import, i.e. in main
                module_called.add(s.target)
        entry_targets = {e.target for e in self.entries}

        def closure(roots: set[str]) -> set[str]:
            reached = set(roots)
            frontier = list(roots)
            while frontier:
                f = frontier.pop()
                for callee in edges.get(f, ()):
                    if callee not in reached:
                        reached.add(callee)
                        frontier.append(callee)
            return reached

        # Thread closure tracks the locks held along each propagation
        # path: entering a callee through a call made under `with lock:`
        # serializes everything below it (the design contract of the
        # serving layer — engines are not internally locked, the service
        # flush lock is).  A function whose every thread path holds some
        # lock is "serialized"; only lock-free reachability is racy.
        thread_prot: dict[str, frozenset[str]] = {
            e.target: frozenset() for e in self.entries if e.kind == "thread"
        }
        work = list(thread_prot)
        while work:
            f = work.pop()
            for site in edge_sites.get(f, ()):
                new = thread_prot[f] | self._held_at_site.get(id(site), frozenset())
                current = thread_prot.get(site.target)
                merged = new if current is None else (current & new)
                if current is None or merged != current:
                    thread_prot[site.target] = merged
                    work.append(site.target)
        self.thread_serialized = dict(thread_prot)
        self.thread_racy = frozenset(q for q, held in thread_prot.items() if not held)

        thread_set = set(thread_prot)
        fork_set = closure({e.target for e in self.entries if e.kind == "fork"})
        # Main: any function that is not exclusively a spawn target is
        # importable and callable from the main thread, plus anything
        # module-level code calls directly.
        main_roots = (set(self.index.functions) - entry_targets) | module_called
        self.main_set = closure(main_roots)

        for qual in self.index.functions:
            members = set()
            if qual in self.main_set:
                members.add("main")
            if qual in thread_set:
                members.add("thread")
            if qual in fork_set:
                members.add("fork")
            self.contexts[qual] = frozenset(members or {"main"})

    def _find_construction_only(self) -> None:
        """Methods reachable (in-project) only from their class's __init__.

        ``PackedModel.__init__ -> _pack_fast -> act_state`` runs before the
        object is published; mutations there are happens-before any other
        thread and are not shared-state races.  A method qualifies when
        every resolved caller is a construction method of the same class
        or itself construction-only (fixpoint), and it has at least one
        caller (unreferenced public methods stay callable from anywhere).
        """
        callers: dict[str, set[str]] = {}
        for s in self.graph.edges:
            if s.target is not None and s.caller in self.index.functions:
                callers.setdefault(s.target, set()).add(s.caller)

        def is_ctor(qual: str) -> bool:
            fn = self.index.functions.get(qual)
            return (
                fn is not None
                and fn.class_qualname is not None
                and fn.name in _CONSTRUCTION_METHODS
            )

        out: set[str] = set()
        changed = True
        while changed:
            changed = False
            for qual, fn in self.index.functions.items():
                if qual in out or fn.class_qualname is None:
                    continue
                callers_of_q = callers.get(qual, set())
                # Nested defs inherit their enclosing function's reachability.
                parent = qual.rsplit(".", 1)[0]
                if parent in self.index.functions:
                    callers_of_q = callers_of_q | {parent}
                if not callers_of_q:
                    continue
                if all(is_ctor(c) or c in out for c in callers_of_q):
                    out.add(qual)
                    changed = True
        self.construction_only = frozenset(out)

    def contexts_of_class(self, class_qualname: str) -> frozenset[str]:
        """Union of contexts across the class's own methods."""
        cinfo = self.index.classes.get(class_qualname)
        if cinfo is None:
            return frozenset()
        out: set[str] = set()
        for method in cinfo.methods.values():
            out |= self.contexts.get(method.qualname, frozenset())
        return frozenset(out)

    # -- shared-state access map ----------------------------------------
    def _scan_classes(self) -> None:
        for qual, cinfo in self.index.classes.items():
            locks = self.class_locks.get(qual, frozenset())
            accesses: list[AttrAccess] = []
            guarded: set[str] = set()
            for method_name, method in cinfo.methods.items():
                for access in self._method_accesses(qual, method_name, method.node, locks):
                    accesses.append(access)
                    if access.is_store and access.held_locks:
                        guarded.add(access.attr)
            self.class_accesses[qual] = accesses
            self.thr001_guarded[qual] = frozenset(guarded)

    def _method_accesses(self, class_qual, method_name, fn, locks):
        out: list[AttrAccess] = []

        def record_loads(stmt: ast.stmt, held: frozenset[str]) -> None:
            # Mutations first (anchor may be a Subscript/Call, not the
            # Attribute itself), then every self.<attr> occurrence as a
            # read; a store target double-counting as a read is harmless
            # for the per-attribute context union.
            for attr, anchor in _mutation_targets(stmt):
                out.append(
                    AttrAccess(
                        class_qualname=class_qual,
                        method=method_name,
                        attr=attr,
                        line=anchor.lineno,
                        col=anchor.col_offset,
                        is_store=True,
                        held_locks=held,
                    )
                )
            record_loads_expr(stmt, held)

        def record_loads_expr(root: ast.AST, held: frozenset[str]) -> None:
            for node in ast.walk(root):
                if (
                    isinstance(node, ast.Attribute)
                    and isinstance(node.value, ast.Name)
                    and node.value.id == "self"
                ):
                    out.append(
                        AttrAccess(
                            class_qualname=class_qual,
                            method=method_name,
                            attr=node.attr,
                            line=node.lineno,
                            col=node.col_offset,
                            is_store=False,
                            held_locks=held,
                        )
                    )

        def scan(stmts: list[ast.stmt], held: frozenset[str]) -> None:
            for stmt in stmts:
                if isinstance(stmt, (ast.With, ast.AsyncWith)):
                    newly = {
                        a
                        for item in stmt.items
                        if (a := _self_attr(item.context_expr)) in locks
                    }
                    for item in stmt.items:
                        record_loads_expr(item.context_expr, held)
                    scan(stmt.body, held | frozenset(newly))
                elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                    continue
                elif isinstance(stmt, (ast.If, ast.For, ast.AsyncFor, ast.While, ast.Try)):
                    for expr_field in ("test", "iter", "target"):
                        sub = getattr(stmt, expr_field, None)
                        if isinstance(sub, ast.expr):
                            record_loads_expr(sub, held)
                    for block in ("body", "orelse", "finalbody"):
                        scan(getattr(stmt, block, []) or [], held)
                    for handler in getattr(stmt, "handlers", []) or []:
                        scan(handler.body, held)
                elif isinstance(stmt, ast.Match):
                    record_loads_expr(stmt.subject, held)
                    for case in stmt.cases:
                        scan(case.body, held)
                else:
                    record_loads(stmt, held)

        scan(fn.body, frozenset())
        return out

    # -- lock-order graph ------------------------------------------------
    def _lock_id(self, ctx: ModuleContext, owner_class: str | None, expr: ast.expr) -> str | None:
        """Stable identity of a lock-typed ``with`` context expression."""
        attr = _self_attr(expr)
        if attr is not None and owner_class is not None:
            if attr in self.class_locks.get(owner_class, frozenset()):
                return f"{owner_class}.{attr}"
            return None
        # self.<obj>._lock style: type the receiver to its owning class.
        if isinstance(expr, ast.Attribute):
            caller_fn = self._current_walk_fn
            scope = (
                self.index._scope_for(caller_fn, ctx) if caller_fn is not None else {}
            )
            base = self.index.value_type(expr.value, scope, ctx)
            if base is not None and base[0] == "class":
                if expr.attr in self.class_locks.get(base[1], frozenset()):
                    return f"{base[1]}.{expr.attr}"
            return None
        if isinstance(expr, ast.Name) and expr.id in self.module_locks.get(ctx.module, frozenset()):
            return f"{ctx.module}:{expr.id}"
        return None

    def _build_lock_order(self) -> None:
        # Pass 1: direct acquisitions per function + lexical nesting edges
        # + (held-locks, resolved call) pairs for pass 2.
        direct: dict[str, set[str]] = {}
        pending_calls: list[tuple[frozenset[str], object]] = []  # (held, site)
        self._current_walk_fn = None
        for qual, fn in self.index.functions.items():
            ctx = self.index.modules.get(fn.module)
            if ctx is None:
                continue
            self._current_walk_fn = fn
            owner = fn.class_qualname
            acquired: set[str] = set()

            def walk(stmts: list[ast.stmt], held: frozenset[str]) -> None:
                for stmt in stmts:
                    if isinstance(stmt, (ast.With, ast.AsyncWith)):
                        new_ids = []
                        for item in stmt.items:
                            lock_id = self._lock_id(ctx, owner, item.context_expr)
                            if lock_id is not None:
                                new_ids.append((lock_id, item.context_expr))
                        now_held = set(held)
                        for lock_id, anchor in new_ids:
                            acquired.add(lock_id)
                            for h in now_held:
                                if h != lock_id:
                                    self.lock_edges.append(
                                        LockAcquisition(
                                            held=h,
                                            acquired=lock_id,
                                            module=ctx.module,
                                            caller=qual,
                                            line=anchor.lineno,
                                            col=anchor.col_offset,
                                        )
                                    )
                            now_held.add(lock_id)
                        walk(stmt.body, frozenset(now_held))
                    elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                        continue
                    elif isinstance(stmt, (ast.If, ast.For, ast.AsyncFor, ast.While, ast.Try)):
                        for expr_field in ("test", "iter"):
                            sub = getattr(stmt, expr_field, None)
                            if isinstance(sub, ast.expr):
                                note_calls(sub, held)
                        for block in ("body", "orelse", "finalbody"):
                            walk(getattr(stmt, block, []) or [], held)
                        for handler in getattr(stmt, "handlers", []) or []:
                            walk(handler.body, held)
                    elif isinstance(stmt, ast.Match):
                        for case in stmt.cases:
                            walk(case.body, held)
                    else:
                        note_calls(stmt, held)

            def note_calls(node: ast.AST, held: frozenset[str]) -> None:
                if not held:
                    return
                for sub in ast.walk(node):
                    if isinstance(sub, ast.Call):
                        site = self._site_by_node.get(id(sub))
                        if site is None:
                            continue
                        if site.kind == "resolved":
                            pending_calls.append((held, site))
                            self._held_at_site[id(site)] = held
                        elif self._entry_of(site, sub)[0] == "fork":
                            for h in held:
                                self.fork_under_lock.append(
                                    LockAcquisition(
                                        held=h,
                                        acquired="<fork>",
                                        module=site.module,
                                        caller=site.caller,
                                        line=sub.lineno,
                                        col=sub.col_offset,
                                    )
                                )

            walk(fn.node.body, frozenset())
            direct[qual] = acquired
        self._current_walk_fn = None

        # Pass 2: eventual-acquisition fixpoint over resolved call edges.
        eventual: dict[str, set[str]] = {q: set(s) for q, s in direct.items()}
        callees: dict[str, set[str]] = {}
        for s in self.graph.edges:
            if s.caller in self.index.functions and s.target is not None:
                callees.setdefault(s.caller, set()).add(s.target)
        changed = True
        while changed:
            changed = False
            for caller, targets in callees.items():
                acc = eventual.setdefault(caller, set())
                before = len(acc)
                for t in targets:
                    acc |= eventual.get(t, set())
                if len(acc) != before:
                    changed = True
        self.eventual_acquires = {q: frozenset(s) for q, s in eventual.items()}

        # Pass 3: held-across-call edges (A held here, B acquired below).
        for held, site in pending_calls:
            for lock_id in self.eventual_acquires.get(site.target, frozenset()):
                for h in held:
                    if h != lock_id:
                        self.lock_edges.append(
                            LockAcquisition(
                                held=h,
                                acquired=lock_id,
                                module=site.module,
                                caller=site.caller,
                                line=site.line,
                                col=site.col,
                                via_call=site.target,
                            )
                        )

    def inversions(self) -> list[tuple[LockAcquisition, LockAcquisition]]:
        """Pairs of edges forming an A->B / B->A acquisition-order cycle.

        Each inverted unordered lock pair is reported once, carrying one
        witness edge per direction (the first seen in source order).
        """
        first_edge: dict[tuple[str, str], LockAcquisition] = {}
        for edge in sorted(self.lock_edges, key=lambda e: (e.module, e.line, e.col)):
            first_edge.setdefault((edge.held, edge.acquired), edge)
        out = []
        seen: set[frozenset[str]] = set()
        for (a, b), edge in first_edge.items():
            back = first_edge.get((b, a))
            if back is None:
                continue
            pair = frozenset((a, b))
            if pair in seen:
                continue
            seen.add(pair)
            out.append((edge, back))
        return out

    # -- fork captures ---------------------------------------------------
    def _scan_fork_captures(self) -> None:
        for site in self.graph.sites:
            call = site.node
            if call is None:
                continue
            kind, target_expr, via = self._entry_of(site, call)
            if kind != "fork":
                continue
            ctx = self.index.modules.get(site.module)
            if ctx is None:
                continue
            caller_fn = self.index.functions.get(site.caller)
            unsafe_locals = self._fork_unsafe_locals(caller_fn, ctx)
            # Values bound into the child: args=(...) tuple elements and
            # explicit keywords (target= handled separately below).
            bound: list[ast.expr] = []
            for kwarg in call.keywords:
                if kwarg.arg == "args" and isinstance(kwarg.value, (ast.Tuple, ast.List)):
                    bound.extend(kwarg.value.elts)
                elif kwarg.arg not in ("target", "name", "daemon", "args", "kwargs"):
                    bound.append(kwarg.value)
            for expr in bound:
                what, cap_kind = self._capture_kind(expr, ctx, caller_fn, unsafe_locals)
                if cap_kind is not None:
                    self.fork_captures.append(
                        ForkCapture(
                            module=site.module,
                            caller=site.caller,
                            line=expr.lineno,
                            col=expr.col_offset,
                            what=what,
                            kind=cap_kind,
                        )
                    )
            # A bound-method target drags the whole instance — including
            # any lock/file/RNG attributes — into the child.
            if isinstance(target_expr, ast.Attribute):
                scope = (
                    self.index._scope_for(caller_fn, ctx) if caller_fn is not None else {}
                )
                base = self.index.value_type(target_expr.value, scope, ctx)
                if base is not None and base[0] == "class":
                    owner = base[1]
                    lock_attrs = self.class_locks.get(owner, frozenset())
                    other = self._captured_class_attrs(owner)
                    if lock_attrs or other:
                        carried = ", ".join(
                            sorted({f"self.{a} (lock)" for a in lock_attrs}
                                   | {f"self.{a} ({k})" for a, k in other.items()})
                        )
                        self.fork_captures.append(
                            ForkCapture(
                                module=site.module,
                                caller=site.caller,
                                line=target_expr.lineno,
                                col=target_expr.col_offset,
                                what=f"bound method of {owner} carrying {carried}",
                                kind="bound-method state",
                            )
                        )

    def _fork_unsafe_locals(self, caller_fn, ctx: ModuleContext) -> dict[str, str]:
        """Local names in the spawning function bound to fork-unsafe values."""
        out: dict[str, str] = {}
        if caller_fn is None:
            return out
        for node in ast.walk(caller_fn.node):
            if not isinstance(node, ast.Assign) or not isinstance(node.value, ast.Call):
                continue
            resolved = ctx.resolve(node.value.func)
            if resolved is None and isinstance(node.value.func, ast.Name):
                if node.value.func.id == "open":
                    resolved = "builtins.open"
            kind = _FORK_UNSAFE_FACTORIES.get(resolved or "")
            if kind is None:
                continue
            for target in node.targets:
                if isinstance(target, ast.Name):
                    out[target.id] = kind
        return out

    def _captured_class_attrs(self, class_qualname: str) -> dict[str, str]:
        """Fork-unsafe ``self`` attributes assigned in a class's constructors."""
        cinfo = self.index.classes.get(class_qualname)
        if cinfo is None:
            return {}
        ctx = self.index.modules.get(cinfo.module)
        out: dict[str, str] = {}
        for name in _CONSTRUCTION_METHODS:
            init = cinfo.methods.get(name)
            if init is None or ctx is None:
                continue
            for node in ast.walk(init.node):
                if not isinstance(node, ast.Assign) or not isinstance(node.value, ast.Call):
                    continue
                resolved = ctx.resolve(node.value.func)
                if resolved is None and isinstance(node.value.func, ast.Name):
                    if node.value.func.id == "open":
                        resolved = "builtins.open"
                kind = _FORK_UNSAFE_FACTORIES.get(resolved or "")
                if kind is None or kind == "lock":  # locks reported separately
                    continue
                for target in node.targets:
                    attr = _self_attr(target)
                    if attr is not None:
                        out[attr] = kind
        return out

    def _capture_kind(self, expr, ctx, caller_fn, unsafe_locals):
        """(description, kind) when ``expr`` is fork-unsafe, else (..., None)."""
        if isinstance(expr, ast.Call):
            resolved = ctx.resolve(expr.func)
            if resolved is None and isinstance(expr.func, ast.Name) and expr.func.id == "open":
                resolved = "builtins.open"
            kind = _FORK_UNSAFE_FACTORIES.get(resolved or "")
            if kind is not None:
                return f"{ast.unparse(expr.func)}(...)", kind
        if isinstance(expr, ast.Name):
            kind = unsafe_locals.get(expr.id)
            if kind is not None:
                return expr.id, kind
        if isinstance(expr, ast.Attribute) and caller_fn is not None:
            scope = self.index._scope_for(caller_fn, ctx)
            base = self.index.value_type(expr.value, scope, ctx)
            if base is not None and base[0] == "class":
                if expr.attr in self.class_locks.get(base[1], frozenset()):
                    return ast.unparse(expr), "lock"
                kind = self._captured_class_attrs(base[1]).get(expr.attr)
                if kind is not None:
                    return ast.unparse(expr), kind
        return "", None


def get_analysis(index: "ProjectIndex") -> ConcurrencyAnalysis:
    """The (cached) analysis for one project index."""
    analysis = getattr(index, "_concurrency_analysis", None)
    if analysis is None:
        analysis = ConcurrencyAnalysis(index)
        index._concurrency_analysis = analysis
    return analysis
