"""Measurement noise for the simulated sensors.

Real DCGM samples jitter: power sensors quantize and lag, activity counters
aggregate over windows, wall-clock timing carries launch jitter.  The noise
model applies seedable, multiplicative log-normal perturbations so that

* repeated runs differ (the paper runs every configuration three times),
* the DNN never sees a perfectly deterministic mapping (its 89-98 %
  accuracy ceiling is meaningful), and
* every experiment stays exactly reproducible from a seed.

Log-normal (rather than additive Gaussian) noise keeps all quantities
strictly positive, which matters for power/time/energy downstream.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["NoiseModel"]


@dataclass
class NoiseModel:
    """Relative noise magnitudes (standard deviation of the log factor)."""

    power_rel_std: float = 0.010
    time_rel_std: float = 0.010
    activity_rel_std: float = 0.020
    #: Extra relative drift applied to dram_active across clocks; paper
    #: Fig. 4 shows memory activity "varies to some extent" under DVFS.
    dram_dvfs_drift_std: float = 0.015

    def __post_init__(self) -> None:
        for name in ("power_rel_std", "time_rel_std", "activity_rel_std", "dram_dvfs_drift_std"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")

    @staticmethod
    def disabled() -> "NoiseModel":
        """A noise model that perturbs nothing (for deterministic tests)."""
        return NoiseModel(0.0, 0.0, 0.0, 0.0)

    # ------------------------------------------------------------------
    def _perturb(self, rng: np.random.Generator, value: float, rel_std: float) -> float:
        # Complement of the vectorized path's `stds > 0.0` active mask, so
        # scalar and batched collection short-circuit identically.
        if rel_std <= 0.0:
            return float(value)
        return float(value * np.exp(rng.normal(0.0, rel_std)))

    def perturb_power(self, rng: np.random.Generator, watts: float) -> float:
        """Noisy power sample."""
        return self._perturb(rng, watts, self.power_rel_std)

    def perturb_time(self, rng: np.random.Generator, seconds: float) -> float:
        """Noisy wall-clock time."""
        return self._perturb(rng, seconds, self.time_rel_std)

    def perturb_activity(self, rng: np.random.Generator, fraction: float, *, extra_std: float = 0.0) -> float:
        """Noisy activity fraction, clipped into [0, 1]."""
        std = self.activity_std(extra_std=extra_std)
        return float(np.clip(self._perturb(rng, fraction, std), 0.0, 1.0))

    # ------------------------------------------------------------------
    # Vectorized (batched) sampling
    # ------------------------------------------------------------------
    def activity_std(self, *, extra_std: float = 0.0) -> float:
        """Effective log-std of one activity counter (base + extra drift)."""
        return float(np.hypot(self.activity_rel_std, extra_std))

    def perturb_columns(
        self,
        rng: np.random.Generator,
        n: int,
        bases: np.ndarray,
        stds: np.ndarray,
    ) -> np.ndarray:
        """``(n, k)`` block of noisy samples: column j is ``bases[j]`` under
        log-normal noise of log-std ``stds[j]``.

        Randomness is consumed as one row-major ``(n, k_active)`` block over
        the columns with non-zero std — draw-for-draw the same stream order
        as calling the scalar ``perturb_*`` methods metric-by-metric inside
        a per-sample loop, so vectorized and scalar collection are bitwise
        identical.  Zero-std columns consume no randomness, exactly like the
        scalar short-circuit.
        """
        if n < 0:
            raise ValueError("n must be non-negative")
        bases = np.asarray(bases, dtype=float)
        stds = np.asarray(stds, dtype=float)
        if bases.shape != stds.shape or bases.ndim != 1:
            raise ValueError("bases and stds must be 1-D arrays of equal length")
        if np.any(stds < 0):
            raise ValueError("stds must be non-negative")
        out = np.repeat(bases[None, :], n, axis=0)
        active = np.flatnonzero(stds > 0.0)
        if active.size and n:
            z = rng.standard_normal((n, active.size))
            out[:, active] = bases[active] * np.exp(stds[active] * z)
        return out
