"""Network tests: construction, forward/backward, end-to-end gradcheck."""

import numpy as np
import pytest

from repro.nn import MSE, Dense, FeedForwardNetwork, RMSprop


class TestBuild:
    def test_paper_architecture(self):
        """3 hidden layers x 64 SELU neurons + linear output (Section 4.3)."""
        net = FeedForwardNetwork.build(3, (64, 64, 64), 1, activation="selu", seed=0)
        assert len(net.layers) == 4
        assert net.input_dim == 3
        assert net.output_dim == 1
        assert all(l.activation.name == "selu" for l in net.layers[:-1])
        assert net.layers[-1].activation.name == "linear"

    def test_parameter_count(self):
        net = FeedForwardNetwork.build(3, (64, 64, 64), 1, seed=0)
        expected = (3 * 64 + 64) + 2 * (64 * 64 + 64) + (64 * 1 + 1)
        assert net.num_parameters() == expected

    def test_seeded_build_deterministic(self):
        a = FeedForwardNetwork.build(3, (8,), 1, seed=7)
        b = FeedForwardNetwork.build(3, (8,), 1, seed=7)
        assert np.array_equal(a.layers[0].params["W"], b.layers[0].params["W"])

    def test_empty_layers_rejected(self):
        with pytest.raises(ValueError, match="at least one layer"):
            FeedForwardNetwork([])

    def test_mismatched_layer_sizes_rejected(self):
        with pytest.raises(ValueError, match="mismatch"):
            FeedForwardNetwork([Dense(3, 4), Dense(5, 1)])


class TestForward:
    def test_predict_shape(self):
        net = FeedForwardNetwork.build(3, (8, 8), 2, seed=0)
        assert net.predict(np.zeros((10, 3))).shape == (10, 2)

    def test_deterministic_inference(self):
        net = FeedForwardNetwork.build(3, (8,), 1, seed=0)
        x = np.random.default_rng(0).standard_normal((5, 3))
        assert np.array_equal(net.predict(x), net.predict(x))


class TestEndToEndGradient:
    def test_full_network_gradcheck(self):
        """Backprop through the whole stack vs finite differences."""
        rng = np.random.default_rng(0)
        net = FeedForwardNetwork.build(3, (5, 4), 2, activation="tanh", seed=1)
        x = rng.standard_normal((6, 3))
        y = rng.standard_normal((6, 2))
        loss = MSE()

        pred = net.forward(x, training=True)
        net.backward(loss.gradient(pred, y))

        h = 1e-6
        for layer_idx in (0, 1, 2):
            layer = net.layers[layer_idx]
            analytic = layer.grads["W"].copy()
            for idx in [(0, 0), (1, 1)]:
                layer.params["W"][idx] += h
                plus = loss(net.predict(x), y)
                layer.params["W"][idx] -= 2 * h
                minus = loss(net.predict(x), y)
                layer.params["W"][idx] += h
                numeric = (plus - minus) / (2 * h)
                assert analytic[idx] == pytest.approx(numeric, rel=1e-3, abs=1e-7), layer_idx


class TestTrainBatch:
    def test_loss_decreases_over_steps(self):
        rng = np.random.default_rng(0)
        net = FeedForwardNetwork.build(2, (16, 16), 1, activation="selu", seed=0)
        x = rng.uniform(-1, 1, size=(256, 2))
        y = (x[:, :1] * x[:, 1:]) * 2.0
        opt = RMSprop(0.003)
        loss = MSE()
        first = net.train_batch(x, y, loss, opt)
        for _ in range(200):
            last = net.train_batch(x, y, loss, opt)
        assert last < 0.2 * first

    def test_evaluate_does_not_update(self):
        net = FeedForwardNetwork.build(2, (4,), 1, seed=0)
        x = np.zeros((3, 2))
        y = np.ones((3, 1))
        w_before = net.layers[0].params["W"].copy()
        net.evaluate(x, y, MSE())
        assert np.array_equal(net.layers[0].params["W"], w_before)
