"""Collection-campaign throughput micro-benchmark.

Times one fixed mini-campaign (3 workloads x 10 clocks x 2 runs, default
512-sample cap) end-to-end — collect plus per-sample dataset assembly —
and records runs/sec and samples/sec in ``BENCH_collection.json`` at the
repo root, so the collection-path perf trajectory is tracked across PRs.

The recorded file doubles as a regression guard: the measured throughput
must stay within ``REGRESSION_FACTOR`` of the best recorded measurement
(machine-to-machine variance is real; a >3x drop is not variance, it is a
perf bug on the campaign hot path).
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.core.dataset import build_dataset
from repro.gpusim import GA100, SimulatedGPU
from repro.telemetry import LaunchConfig, Launcher
from repro.workloads import get_workload

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_collection.json"

WORKLOAD_NAMES = ("stream", "dgemm", "fft")
N_CLOCKS = 10
RUNS_PER_CONFIG = 2
#: Fail when throughput drops more than this factor below the best record.
REGRESSION_FACTOR = 3.0


def _measure_once(workers: int | None) -> tuple[int, int, float]:
    device = SimulatedGPU(GA100, seed=7)
    launcher = Launcher(device)
    freqs = tuple(device.dvfs.usable_mhz[::6][:N_CLOCKS])
    config = LaunchConfig(freqs_mhz=freqs, runs_per_config=RUNS_PER_CONFIG)
    workloads = [get_workload(name) for name in WORKLOAD_NAMES]
    start = time.perf_counter()
    artifacts = launcher.collect(workloads, config, workers=workers)
    build_dataset(artifacts, per_sample=True)
    elapsed = time.perf_counter() - start
    return len(artifacts), sum(a.record.n_samples for a in artifacts), elapsed


def _measure(workers: int | None = 1, repeats: int = 3) -> dict:
    """Best-of-``repeats`` timing (noise floor, not average machine load)."""
    best = None
    runs = samples = 0
    for _ in range(repeats):
        runs, samples, elapsed = _measure_once(workers)
        best = elapsed if best is None else min(best, elapsed)
    return {
        "runs": runs,
        "samples": samples,
        "seconds": round(best, 6),
        "runs_per_s": round(runs / best, 2),
        "samples_per_s": round(samples / best, 1),
    }


def test_collection_throughput_tracked():
    previous = json.loads(BENCH_PATH.read_text()) if BENCH_PATH.exists() else {}
    current = _measure(workers=1)

    best = previous.get("best")
    if best is None or current["samples_per_s"] > best["samples_per_s"]:
        best = current

    payload = {
        "bench": "collection-mini-campaign",
        "campaign": {
            "workloads": list(WORKLOAD_NAMES),
            "clocks": N_CLOCKS,
            "runs_per_config": RUNS_PER_CONFIG,
        },
        "pre_pr_baseline": previous.get("pre_pr_baseline"),
        "best": best,
        "current": current,
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    floor = best["samples_per_s"] / REGRESSION_FACTOR
    assert current["samples_per_s"] >= floor, (
        f"collection throughput regressed: {current['samples_per_s']:.0f} samples/s "
        f"is below the {floor:.0f} samples/s floor "
        f"({REGRESSION_FACTOR}x under the best recorded {best['samples_per_s']:.0f})"
    )


def test_vectorized_path_beats_pre_pr_baseline_10x():
    """The acceptance bar of the vectorization PR, kept as a living check."""
    recorded = json.loads(BENCH_PATH.read_text())
    baseline = recorded.get("pre_pr_baseline")
    assert baseline is not None, "BENCH_collection.json lost its pre-PR baseline entry"
    current = _measure(workers=1, repeats=2)
    assert current["samples_per_s"] >= 10.0 * baseline["samples_per_s"]
