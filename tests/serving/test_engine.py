"""Fused inference engine: the bitwise (exact) and 1e-9 (fast) contracts.

Two equivalence bars, matching DESIGN.md §13:

* ``fast=False`` (the default everywhere) replays the reference model
  path — results must equal ``predict_power_many`` /
  ``predict_unit_time_many`` *bitwise*, including on arena-reusing
  repeat calls.
* ``fast=True`` folds scalers/SELU-scale/exp2 into the weights — gated
  by a 1e-9 relative-error bar, property-tested over random stacks.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dataset import FeatureVector
from repro.core.models import InferenceSpec
from repro.nn.activations import get_activation
from repro.serving.engine import FusedInferenceEngine, PackedModel, ShardPool

from tests.golden.tiny_pipeline import make_tiny_pipeline


@pytest.fixture(scope="module")
def served(tiny_models):
    """Pipeline plus the specs/grid/scale the service would hand the engine."""
    pipeline = make_tiny_pipeline(tiny_models)
    freqs = pipeline.device.dvfs.usable_array()
    scale = pipeline.device.arch.tdp_watts
    return pipeline, freqs, scale


def _columns(n: int, seed: int = 7) -> tuple[np.ndarray, np.ndarray]:
    rng = np.random.default_rng(seed)
    return rng.uniform(0.05, 0.95, n), rng.uniform(0.05, 0.95, n)


def _feature_list(fp: np.ndarray, dram: np.ndarray) -> list[FeatureVector]:
    return [FeatureVector(f, d, 1410.0) for f, d in zip(fp, dram)]


def _reference_curves(pipeline, fp, dram, freqs, scale):
    """What the pre-engine predict stage produced, via the model API."""
    features = _feature_list(fp, dram)
    power = pipeline.power_model.predict_power_many(
        features, freqs, target_power_scale_w=scale
    )
    unit_time = pipeline.time_model.predict_unit_time_many(features, freqs)
    return power, unit_time


class TestExactBitwise:
    def test_matches_model_path_bitwise(self, served):
        pipeline, freqs, scale = served
        engine = FusedInferenceEngine(
            pipeline.power_model.inference_spec(),
            pipeline.time_model.inference_spec(),
            freqs,
            power_scale_w=scale,
        )
        fp, dram = _columns(37)
        want_power, want_time = _reference_curves(pipeline, fp, dram, freqs, scale)
        power, unit_time = engine.infer(fp, dram)
        assert np.array_equal(power, want_power)
        assert np.array_equal(unit_time, want_time)

    def test_arena_reuse_stays_bitwise(self, served):
        """Second and shrunken calls reuse warmed arenas without drift."""
        pipeline, freqs, scale = served
        engine = FusedInferenceEngine(
            pipeline.power_model.inference_spec(),
            pipeline.time_model.inference_spec(),
            freqs,
            power_scale_w=scale,
        )
        big_fp, big_dram = _columns(40, seed=1)
        engine.infer(big_fp, big_dram)  # grow arenas past the next calls
        for n, seed in ((40, 2), (5, 3), (17, 4)):
            fp, dram = _columns(n, seed=seed)
            want_power, want_time = _reference_curves(pipeline, fp, dram, freqs, scale)
            power, unit_time = engine.infer(fp, dram)
            assert np.array_equal(power, want_power)
            assert np.array_equal(unit_time, want_time)

    def test_outputs_are_fresh_arrays(self, served):
        """Curves must survive later flushes — never arena views."""
        pipeline, freqs, scale = served
        engine = FusedInferenceEngine(
            pipeline.power_model.inference_spec(),
            pipeline.time_model.inference_spec(),
            freqs,
            power_scale_w=scale,
        )
        fp, dram = _columns(6)
        power_a, time_a = engine.infer(fp, dram)
        keep_p, keep_t = power_a.copy(), time_a.copy()
        engine.infer(*_columns(6, seed=9))
        assert np.array_equal(power_a, keep_p)
        assert np.array_equal(time_a, keep_t)


class TestFastPath:
    def test_within_1e9_of_model_path(self, served):
        pipeline, freqs, scale = served
        engine = FusedInferenceEngine(
            pipeline.power_model.inference_spec(),
            pipeline.time_model.inference_spec(),
            freqs,
            power_scale_w=scale,
            fast=True,
        )
        fp, dram = _columns(64)
        want_power, want_time = _reference_curves(pipeline, fp, dram, freqs, scale)
        power, unit_time = engine.infer(fp, dram)
        np.testing.assert_allclose(power, want_power, rtol=1e-9, atol=0.0)
        np.testing.assert_allclose(unit_time, want_time, rtol=1e-9, atol=0.0)

    def test_direct_out_requires_contiguous(self, served):
        pipeline, freqs, _ = served
        model = PackedModel(pipeline.power_model.inference_spec(), freqs, fast=True)
        fp, dram = _columns(4)
        out = np.empty((freqs.size, 4)).T  # F-order: reshape would copy
        with pytest.raises(ValueError, match="C-contiguous"):
            model.forward_into(fp, dram, out)

    def test_fast_rejects_unsupported_activation(self, served):
        pipeline, freqs, _ = served
        spec = pipeline.power_model.inference_spec()
        w, b, _ = spec.layers[1]
        layers = (spec.layers[0], (w, b, "tanh"), *spec.layers[2:])
        bent = InferenceSpec(
            x_mean=spec.x_mean,
            x_scale=spec.x_scale,
            y_mean=spec.y_mean,
            y_scale=spec.y_scale,
            log_target=spec.log_target,
            layers=layers,
            fingerprint=spec.fingerprint,
        )
        with pytest.raises(ValueError, match="fast mode"):
            PackedModel(bent, freqs, fast=True)
        PackedModel(bent, freqs)  # exact mode falls back to the reference op


class TestValidation:
    def test_out_shape_checked(self, served):
        pipeline, freqs, _ = served
        model = PackedModel(pipeline.power_model.inference_spec(), freqs)
        fp, dram = _columns(3)
        with pytest.raises(ValueError, match="shape"):
            model.forward_into(fp, dram, np.empty((3, freqs.size - 1)))

    def test_column_shapes_checked(self, served):
        pipeline, freqs, scale = served
        engine = FusedInferenceEngine(
            pipeline.power_model.inference_spec(),
            pipeline.time_model.inference_spec(),
            freqs,
            power_scale_w=scale,
        )
        with pytest.raises(ValueError, match="1-D"):
            engine.infer(np.zeros(3), np.zeros(4))

    def test_bad_config_rejected(self, served):
        pipeline, freqs, _ = served
        spec = pipeline.power_model.inference_spec()
        with pytest.raises(ValueError, match="tile_reqs"):
            PackedModel(spec, freqs, tile_reqs=0)
        with pytest.raises(ValueError, match="shards"):
            FusedInferenceEngine(spec, spec, freqs, shards=0)

    def test_empty_flush(self, served):
        pipeline, freqs, scale = served
        engine = FusedInferenceEngine(
            pipeline.power_model.inference_spec(),
            pipeline.time_model.inference_spec(),
            freqs,
            power_scale_w=scale,
            fast=True,
        )
        power, unit_time = engine.infer(np.empty(0), np.empty(0))
        assert power.shape == (0, freqs.size)
        assert unit_time.shape == (0, freqs.size)

    def test_mode_strings(self, served):
        pipeline, freqs, _ = served
        spec_p = pipeline.power_model.inference_spec()
        spec_t = pipeline.time_model.inference_spec()
        assert FusedInferenceEngine(spec_p, spec_t, freqs).mode == "exact"
        assert FusedInferenceEngine(spec_p, spec_t, freqs, fast=True).mode == "fused"


# ----------------------------------------------------------------------
# Property test: fast ≈ exact over random packed stacks
# ----------------------------------------------------------------------
def _random_spec(seed: int, widths: list[int], acts: list[str], log_target: bool) -> InferenceSpec:
    """A synthetic trained-model snapshot with the given stack shape."""
    rng = np.random.default_rng(seed)
    dims = [3, *widths, 1]
    layers = []
    for i, act in enumerate(acts):
        w = rng.normal(0.0, 0.5, (dims[i], dims[i + 1]))
        b = rng.normal(0.0, 0.2, dims[i + 1])
        layers.append((w, b, act))
    return InferenceSpec(
        x_mean=rng.normal(0.0, 1.0, 3),
        x_scale=rng.uniform(0.5, 2.0, 3),
        y_mean=rng.normal(0.0, 0.5, 1),
        y_scale=rng.uniform(0.1, 1.0, 1),
        log_target=log_target,
        layers=tuple(layers),
        fingerprint=f"prop-{seed}",
    )


def _plain_forward(spec: InferenceSpec, fp, dram, freqs) -> np.ndarray:
    """Straight-line numpy forward pass, no folding, no arenas."""
    n, f = fp.size, freqs.size
    x = np.empty((n * f, 3))
    x[:, 0] = np.repeat(fp, f)
    x[:, 1] = np.repeat(dram, f)
    x[:, 2] = np.tile(freqs, n)
    cur = (x - spec.x_mean) / spec.x_scale
    for w, b, act in spec.layers:
        cur = get_activation(act)(cur @ w + b)
    y = cur * spec.y_scale + spec.y_mean
    if spec.log_target:
        y = np.exp(y)
    return y.reshape(n, f)


@given(
    seed=st.integers(0, 2**31 - 1),
    widths=st.lists(st.integers(1, 8), min_size=1, max_size=3),
    hidden_act=st.sampled_from(["selu", "relu"]),
    out_act=st.sampled_from(["linear", "selu", "relu"]),
    log_target=st.booleans(),
    n=st.integers(1, 30),
)
@settings(max_examples=40, deadline=None)
def test_fast_path_property(seed, widths, hidden_act, out_act, log_target, n):
    """Fast mode stays within 1e-9 rtol of the unfolded forward pass for
    any selu/relu/linear stack, and exact mode replays it bitwise."""
    acts = [hidden_act] * len(widths) + [out_act]
    spec = _random_spec(seed, widths, acts, log_target)
    freqs = np.linspace(500.0, 1500.0, 9)
    rng = np.random.default_rng(seed + 1)
    fp = rng.uniform(0.0, 1.0, n)
    dram = rng.uniform(0.0, 1.0, n)
    want = _plain_forward(spec, fp, dram, freqs)

    fast = np.empty((n, freqs.size))
    PackedModel(spec, freqs, fast=True, tile_reqs=4).forward_into(fp, dram, fast)
    np.testing.assert_allclose(fast, want, rtol=1e-9, atol=0.0)

    exact = np.empty((n, freqs.size))
    PackedModel(spec, freqs, chunk_reqs=8).forward_into(fp, dram, exact)
    np.testing.assert_allclose(exact, want, rtol=1e-12, atol=0.0)


# ----------------------------------------------------------------------
# Shard pool
# ----------------------------------------------------------------------
class TestShardPool:
    def test_sharded_exact_is_bitwise(self, served):
        pipeline, freqs, scale = served
        spec_p = pipeline.power_model.inference_spec()
        spec_t = pipeline.time_model.inference_spec()
        fp, dram = _columns(11)
        want_power, want_time = _reference_curves(pipeline, fp, dram, freqs, scale)
        with FusedInferenceEngine(
            spec_p, spec_t, freqs, power_scale_w=scale, shards=2
        ) as engine:
            assert engine.mode == "exactx2"
            power, unit_time = engine.infer(fp, dram)
            # A 1-row flush is below the shard count: in-process fallback.
            solo_p, solo_t = engine.infer(fp[:1], dram[:1])
        assert np.array_equal(power, want_power)
        assert np.array_equal(unit_time, want_time)
        assert np.array_equal(solo_p, want_power[:1])
        assert np.array_equal(solo_t, want_time[:1])

    def test_pool_over_capacity_returns_none(self, served):
        pipeline, freqs, scale = served
        spec_p = pipeline.power_model.inference_spec()
        spec_t = pipeline.time_model.inference_spec()
        fp, dram = _columns(8)
        with ShardPool(
            spec_p, spec_t, freqs, power_scale_w=scale, n_shards=2, capacity=4
        ) as pool:
            assert pool.infer(fp, dram) is None
            small = pool.infer(fp[:4], dram[:4])
        assert small is not None
        want_power, _ = _reference_curves(pipeline, fp[:4], dram[:4], freqs, scale)
        np.testing.assert_allclose(small[0], want_power, rtol=1e-9, atol=0.0)

    def test_closed_pool_rejects_work(self, served):
        pipeline, freqs, _ = served
        spec_p = pipeline.power_model.inference_spec()
        spec_t = pipeline.time_model.inference_spec()
        pool = ShardPool(spec_p, spec_t, freqs, n_shards=2, capacity=8)
        pool.close()
        pool.close()  # idempotent
        with pytest.raises(RuntimeError, match="closed"):
            pool.infer(np.zeros(2), np.zeros(2))

    def test_pool_config_validated(self, served):
        pipeline, freqs, _ = served
        spec = pipeline.power_model.inference_spec()
        with pytest.raises(ValueError, match="n_shards"):
            ShardPool(spec, spec, freqs, n_shards=1)
        with pytest.raises(ValueError, match="capacity"):
            ShardPool(spec, spec, freqs, n_shards=4, capacity=2)
