"""Cross-cutting property-based tests on the full simulator stack.

These use hypothesis to generate whole kernel censuses and check the
physical invariants the paper's method rests on: monotone power, bounded
activities, time ordering, and selection consistency.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ED2P, EDP, select_optimal_frequency
from repro.gpusim import GA100, KernelCensus, NoiseModel, SimulatedGPU

_DEVICE = SimulatedGPU(GA100, seed=0, noise=NoiseModel.disabled())


@st.composite
def censuses(draw):
    """Random but physically plausible kernel censuses."""
    return KernelCensus(
        flops_fp64=draw(st.floats(0.0, 1e14)),
        flops_fp32=draw(st.floats(1e9, 1e14)),
        dram_bytes=draw(st.floats(1e8, 1e13)),
        pcie_rx_bytes=draw(st.floats(0.0, 1e10)),
        pcie_tx_bytes=draw(st.floats(0.0, 1e10)),
        occupancy=draw(st.floats(0.1, 1.0)),
        compute_efficiency=draw(st.floats(0.2, 1.0)),
        memory_efficiency=draw(st.floats(0.2, 1.0)),
        serial_fraction=draw(st.floats(0.0, 0.5)),
        compute_latency_fraction=draw(st.floats(0.0, 0.8)),
        concurrent_host_fraction=draw(st.floats(0.0, 2.0)),
    )


@given(census=censuses())
@settings(max_examples=80, deadline=None)
def test_time_monotone_nonincreasing_in_clock(census):
    t_low = _DEVICE.true_time(census, 510.0)
    t_mid = _DEVICE.true_time(census, 900.0)
    t_high = _DEVICE.true_time(census, 1410.0)
    assert t_low >= t_mid - 1e-12 >= t_high - 2e-12


@given(census=censuses())
@settings(max_examples=80, deadline=None)
def test_power_monotone_and_bounded(census):
    p_low = _DEVICE.true_power(census, 510.0)
    p_high = _DEVICE.true_power(census, 1410.0)
    assert p_low <= p_high + 1e-9
    for p in (p_low, p_high):
        assert GA100.idle_power_watts - 1e-9 <= p <= GA100.tdp_watts + 1e-9


@given(census=censuses())
@settings(max_examples=60, deadline=None)
def test_activities_in_unit_interval_everywhere(census):
    for f in (510.0, 1005.0, 1410.0):
        bd = _DEVICE.timing.evaluate(census, f)
        for name in ("fp_active", "fp64_active", "fp32_active", "dram_active", "sm_active", "gr_engine_active"):
            value = getattr(bd, name)
            assert 0.0 <= value <= 1.0, f"{name}={value} at {f} MHz"


@given(census=censuses())
@settings(max_examples=40, deadline=None)
def test_energy_bounded_by_power_envelope(census):
    """E(f) must lie between idle*T and TDP*T at every clock."""
    for f in (510.0, 1005.0, 1410.0):
        t = _DEVICE.true_time(census, f)
        e = _DEVICE.true_energy(census, f)
        assert GA100.idle_power_watts * t - 1e-6 <= e <= GA100.tdp_watts * t + 1e-6


@given(census=censuses())
@settings(max_examples=40, deadline=None)
def test_selection_consistent_on_true_curves(census):
    """Algorithm 1 on noise-free curves: ED2P optimum >= EDP optimum."""
    freqs = _DEVICE.dvfs.usable_array()
    power = np.array([_DEVICE.true_power(census, f) for f in freqs])
    time = np.array([_DEVICE.true_time(census, f) for f in freqs])
    energy = power * time
    edp = select_optimal_frequency(freqs, energy, time, objective=EDP)
    ed2p = select_optimal_frequency(freqs, energy, time, objective=ED2P)
    assert ed2p.freq_mhz >= edp.freq_mhz - 1e-9
    assert edp.energy_saving >= -1e-9


@given(census=censuses(), seed=st.integers(0, 10_000))
@settings(max_examples=30, deadline=None)
def test_noisy_measurements_bracket_truth(census, seed):
    """Noisy run aggregates stay within a few sigma of the true values."""
    device = SimulatedGPU(GA100, seed=seed, max_samples_per_run=16)
    record = device.run(census)
    true_t = device.true_time(census, 1410.0)
    true_p = device.true_power(census, 1410.0)
    assert record.exec_time_s == pytest.approx(true_t, rel=0.10)
    assert record.mean_power_w == pytest.approx(true_p, rel=0.10)


@given(
    census=censuses(),
    threshold=st.floats(0.005, 0.5),
)
@settings(max_examples=30, deadline=None)
def test_threshold_honored_on_arbitrary_workloads(census, threshold):
    freqs = _DEVICE.dvfs.usable_array()
    power = np.array([_DEVICE.true_power(census, f) for f in freqs])
    time = np.array([_DEVICE.true_time(census, f) for f in freqs])
    res = select_optimal_frequency(freqs, power * time, time, objective=EDP, threshold=threshold)
    assert res.perf_degradation < threshold
