"""Stochastic job arrivals for fleet campaigns.

Jobs are drawn from a (possibly surge-modulated) Poisson process: the
submission window is walked in one-second steps, the per-step count is
Poisson(rate(t) * dt) and arrival instants are uniform inside the step.
All randomness comes from the single ``rng`` argument — the fleet
simulator passes a generator built from the campaign's dedicated
arrival SeedSequence child, so the job list is a pure function of
(scenario, seed) and independent of node count or iteration order.

Deadlines are physical, not random: each workload's deadline base is
``deadline_factor x`` its noise-free boost-clock runtime
(:meth:`~repro.gpusim.device.SimulatedGPU.true_time`), taken worst-case
across the fleet's architectures since placement is not known at
submission time.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.job import Job
from repro.fleet.scenario import ArrivalSpec
from repro.gpusim import GA100, GV100, SimulatedGPU
from repro.workloads import get_workload

__all__ = ["rate_at", "deadline_bases", "generate_jobs"]

_ARCHS = {"GA100": GA100, "GV100": GV100}


def rate_at(arrival: ArrivalSpec, t_s: float) -> float:
    """Instantaneous arrival rate (jobs/s) at ``t_s``, surges applied."""
    rate = arrival.rate_per_s
    for surge in arrival.surges:
        if surge.start_s <= t_s < surge.end_s:
            rate *= surge.multiplier
    return rate


def deadline_bases(arrival: ArrivalSpec, arch_names: tuple[str, ...]) -> dict[str, float]:
    """Per-workload noise-free boost runtime, worst across ``arch_names``.

    RNG-free: :meth:`true_time` is the simulator's analytic model, so
    building reference devices here consumes no random stream.
    """
    devices = [SimulatedGPU(_ARCHS[name], seed=0) for name in sorted(set(arch_names))]
    bases: dict[str, float] = {}
    for name in arrival.workloads:
        workload = get_workload(name)
        census = workload.census()
        bases[name] = max(
            float(d.true_time(census, d.arch.default_core_freq_mhz)) for d in devices
        )
    return bases


def generate_jobs(
    arrival: ArrivalSpec,
    *,
    rng: np.random.Generator,
    arch_names: tuple[str, ...],
) -> list[Job]:
    """The campaign's job list, in arrival order with sequential ids."""
    bases = deadline_bases(arrival, arch_names) if arrival.deadline_factor is not None else {}
    names = arrival.workloads
    events: list[tuple[float, str]] = []
    t = 0.0
    while t < arrival.duration_s:
        dt = min(1.0, arrival.duration_s - t)
        lam = rate_at(arrival, t) * dt
        n = int(rng.poisson(lam))
        if n:
            offsets = rng.random(n) * dt
            picks = rng.integers(0, len(names), size=n)
            for off, pick in zip(offsets, picks):
                events.append((t + float(off), names[int(pick)]))
        t += dt
    events.sort(key=lambda e: e[0])
    jobs: list[Job] = []
    for job_id, (arrival_s, name) in enumerate(events):
        deadline = None
        if arrival.deadline_factor is not None:
            deadline = arrival_s + arrival.deadline_factor * bases[name]
        jobs.append(
            Job(
                job_id=job_id,
                workload=get_workload(name),
                arrival_s=arrival_s,
                deadline_s=deadline,
            )
        )
    return jobs
