"""Interprocedural concurrency analysis + THR002/THR003/THR004/RES001.

Every fixture is a synthetic module checked through ``check_source`` (so
noqa applies and package scoping is honoured) or indexed directly for
the analysis-layer unit tests.  The seeded positives required by the
acceptance criteria live here: a cross-thread race, a lock-order
inversion (lexical and interprocedural), fork-unsafe captures, and a
leaked ``shared_memory`` block.
"""

from __future__ import annotations

import pytest

from repro.devtools import check_source
from repro.devtools.concurrency import get_analysis
from repro.devtools.context import context_from_source
from repro.devtools.graph import ProjectIndex


def _ids(findings):
    return [f.rule_id for f in findings]


def _analysis(modules: dict[str, str]):
    contexts = [context_from_source(src, module=mod) for mod, src in modules.items()]
    index = ProjectIndex.from_contexts(contexts)
    return get_analysis(index)


# ----------------------------------------------------------------------
# Context inference (analysis layer)
# ----------------------------------------------------------------------
class TestContextInference:
    def test_thread_entry_discovered_and_propagated(self):
        analysis = _analysis(
            {
                "repro.fixmod": (
                    "import threading\n"
                    "\n"
                    "def work():\n"
                    "    step()\n"
                    "\n"
                    "def step():\n"
                    "    pass\n"
                    "\n"
                    "def start():\n"
                    "    t = threading.Thread(target=work)\n"
                    "    t.start()\n"
                )
            }
        )
        assert [(e.kind, e.target) for e in analysis.entries] == [
            ("thread", "repro.fixmod.work")
        ]
        # The context propagates over the call edge to the callee.
        assert "thread" in analysis.contexts["repro.fixmod.work"]
        assert "thread" in analysis.contexts["repro.fixmod.step"]
        # Neither runs under any lock -> both are racy.
        assert "repro.fixmod.work" in analysis.thread_racy
        assert "repro.fixmod.step" in analysis.thread_racy
        # The spawner itself stays a main-context function.
        assert analysis.contexts["repro.fixmod.start"] == frozenset({"main"})

    def test_executor_submit_registers_thread_entry(self):
        analysis = _analysis(
            {
                "repro.fixmod": (
                    "from concurrent.futures import ThreadPoolExecutor\n"
                    "\n"
                    "def job():\n"
                    "    pass\n"
                    "\n"
                    "def run(pool: ThreadPoolExecutor):\n"
                    "    pool.submit(job)\n"
                )
            }
        )
        assert [(e.kind, e.target) for e in analysis.entries] == [
            ("thread", "repro.fixmod.job")
        ]

    def test_process_target_registers_fork_entry(self):
        analysis = _analysis(
            {
                "repro.fixmod": (
                    "import multiprocessing\n"
                    "\n"
                    "def child():\n"
                    "    pass\n"
                    "\n"
                    "def spawn():\n"
                    "    p = multiprocessing.Process(target=child)\n"
                    "    p.start()\n"
                )
            }
        )
        assert [(e.kind, e.target) for e in analysis.entries] == [
            ("fork", "repro.fixmod.child")
        ]
        assert "fork" in analysis.contexts["repro.fixmod.child"]

    def test_lock_held_call_path_serializes_callee(self):
        analysis = _analysis(
            {
                "repro.fixmod": (
                    "import threading\n"
                    "\n"
                    "class Service:\n"
                    "    def __init__(self):\n"
                    "        self._lock = threading.Lock()\n"
                    "        self.count = 0\n"
                    "        self._t = threading.Thread(target=self._run)\n"
                    "        self._t.start()\n"
                    "\n"
                    "    def _run(self):\n"
                    "        with self._lock:\n"
                    "            self._flush()\n"
                    "\n"
                    "    def _flush(self):\n"
                    "        self.count += 1\n"
                )
            }
        )
        flush = "repro.fixmod.Service._flush"
        # Every thread path into _flush holds the service lock, so it is
        # serialized, not racy — the repo's engines-behind-a-flush-lock
        # contract.
        assert analysis.thread_serialized[flush] == frozenset(
            {"repro.fixmod.Service._lock"}
        )
        assert flush not in analysis.thread_racy
        assert "repro.fixmod.Service._run" in analysis.thread_racy

    def test_construction_only_helpers_are_recognized(self):
        analysis = _analysis(
            {
                "repro.fixmod": (
                    "class Model:\n"
                    "    def __init__(self):\n"
                    "        self.w = []\n"
                    "        self._pack()\n"
                    "\n"
                    "    def _pack(self):\n"
                    "        self._pack_layer()\n"
                    "\n"
                    "    def _pack_layer(self):\n"
                    "        self.w.append(1)\n"
                    "\n"
                    "    def predict(self):\n"
                    "        return self.w\n"
                )
            }
        )
        assert "repro.fixmod.Model._pack" in analysis.construction_only
        assert "repro.fixmod.Model._pack_layer" in analysis.construction_only
        assert "repro.fixmod.Model.predict" not in analysis.construction_only


# ----------------------------------------------------------------------
# THR002 — cross-context mutation without a lock
# ----------------------------------------------------------------------
_RACY_COUNTER = """
import threading

class Counter:
    def __init__(self):
        self.total = 0
        self._thread = threading.Thread(target=self._work)
        self._thread.start()

    def _work(self):
        self.total += 1

    def read(self):
        return self.total
"""


class TestTHR002:
    def test_seeded_race_is_detected(self):
        findings = check_source(_RACY_COUNTER, module="repro.fixmod", rules=["THR002"])
        assert _ids(findings) == ["THR002"]
        assert "self.total" in findings[0].message
        assert "no lock held" in findings[0].message
        # Anchored at the mutation inside the thread-entered method.
        assert findings[0].line == _RACY_COUNTER.splitlines().index("        self.total += 1") + 1

    def test_lock_held_mutation_is_clean(self):
        clean = """
import threading

class Counter:
    def __init__(self):
        self._lock = threading.Lock()
        self.total = 0
        self._thread = threading.Thread(target=self._work)
        self._thread.start()

    def _work(self):
        with self._lock:
            self.total += 1

    def read(self):
        with self._lock:
            return self.total
"""
        assert check_source(clean, module="repro.fixmod", rules=["THR002"]) == []

    def test_interprocedural_lock_serialization_is_clean(self):
        # The mutation itself holds no lock lexically, but every thread
        # path into it does — serialized by contract, not racy.
        clean = """
import threading

class Service:
    def __init__(self):
        self._lock = threading.Lock()
        self.count = 0
        self._t = threading.Thread(target=self._run)
        self._t.start()

    def _run(self):
        with self._lock:
            self._flush()

    def _flush(self):
        self.count += 1

    def read(self):
        with self._lock:
            return self.count
"""
        assert check_source(clean, module="repro.fixmod", rules=["THR002"]) == []

    def test_module_global_mutated_from_thread(self):
        racy = """
import threading

counter = 0

def bump():
    global counter
    counter += 1

def start():
    t = threading.Thread(target=bump)
    t.start()
"""
        findings = check_source(racy, module="repro.fixmod", rules=["THR002"])
        assert _ids(findings) == ["THR002"]
        assert "module global 'counter'" in findings[0].message

    def test_module_global_under_module_lock_is_clean(self):
        clean = """
import threading

_lock = threading.Lock()
items = []

def push():
    with _lock:
        items.append(1)

def start():
    t = threading.Thread(target=push)
    t.start()
"""
        assert check_source(clean, module="repro.fixmod", rules=["THR002"]) == []

    def test_no_thread_entry_no_findings(self):
        plain = """
class Counter:
    def __init__(self):
        self.total = 0

    def bump(self):
        self.total += 1
"""
        assert check_source(plain, module="repro.fixmod", rules=["THR002"]) == []


# ----------------------------------------------------------------------
# THR003 — lock-order inversion
# ----------------------------------------------------------------------
class TestTHR003:
    def test_lexical_inversion_detected(self):
        inverted = """
import threading

class Pair:
    def __init__(self):
        self._a = threading.Lock()
        self._b = threading.Lock()

    def fwd(self):
        with self._a:
            with self._b:
                pass

    def back(self):
        with self._b:
            with self._a:
                pass
"""
        findings = check_source(inverted, module="repro.fixmod", rules=["THR003"])
        # One finding per direction of the cycle.
        assert _ids(findings) == ["THR003", "THR003"]
        for f in findings:
            assert "opposite order" in f.message
            assert "deadlock" in f.message

    def test_interprocedural_inversion_detected(self):
        inverted = """
import threading

class Store:
    def __init__(self):
        self._meta = threading.Lock()
        self._data = threading.Lock()

    def _flush(self):
        with self._data:
            pass

    def save(self):
        with self._meta:
            self._flush()

    def load(self):
        with self._data:
            with self._meta:
                pass
"""
        findings = check_source(inverted, module="repro.fixmod", rules=["THR003"])
        assert _ids(findings) == ["THR003", "THR003"]
        # One witness comes from the held-across-call edge.
        assert any("via call to repro.fixmod.Store._flush" in f.message for f in findings)

    def test_consistent_order_is_clean(self):
        consistent = """
import threading

class Pair:
    def __init__(self):
        self._a = threading.Lock()
        self._b = threading.Lock()

    def one(self):
        with self._a:
            with self._b:
                pass

    def two(self):
        with self._a:
            with self._b:
                pass
"""
        assert check_source(consistent, module="repro.fixmod", rules=["THR003"]) == []

    def test_inversion_reported_once_per_pair(self):
        # Three forward witnesses + one backward must still report one
        # inversion (two findings: one per direction), not three.
        repeated = """
import threading

class Pair:
    def __init__(self):
        self._a = threading.Lock()
        self._b = threading.Lock()

    def f1(self):
        with self._a:
            with self._b:
                pass

    def f2(self):
        with self._a:
            with self._b:
                pass

    def back(self):
        with self._b:
            with self._a:
                pass
"""
        findings = check_source(repeated, module="repro.fixmod", rules=["THR003"])
        assert len(findings) == 2


# ----------------------------------------------------------------------
# THR004 — fork-unsafe captures
# ----------------------------------------------------------------------
class TestTHR004:
    def test_lock_passed_to_child_detected(self):
        unsafe = """
import multiprocessing
import threading

def worker(lk):
    pass

def spawn():
    lk = threading.Lock()
    p = multiprocessing.Process(target=worker, args=(lk,))
    p.start()
"""
        findings = check_source(unsafe, module="repro.fixmod", rules=["THR004"])
        assert _ids(findings) == ["THR004"]
        assert "captures lock (lk)" in findings[0].message

    def test_open_file_passed_to_child_detected(self):
        unsafe = """
import multiprocessing

def worker(fh):
    pass

def spawn(path):
    fh = open(path)
    p = multiprocessing.Process(target=worker, args=(fh,))
    p.start()
    fh.close()
"""
        findings = check_source(unsafe, module="repro.fixmod", rules=["THR004"])
        assert _ids(findings) == ["THR004"]
        assert "open file handle" in findings[0].message

    def test_fork_while_holding_lock_detected(self):
        unsafe = """
import multiprocessing
import threading

_lock = threading.Lock()

def worker(n):
    pass

def spawn():
    with _lock:
        p = multiprocessing.Process(target=worker, args=(1,))
        p.start()
"""
        findings = check_source(unsafe, module="repro.fixmod", rules=["THR004"])
        assert _ids(findings) == ["THR004"]
        assert "forked while holding" in findings[0].message

    def test_name_and_scalar_args_are_clean(self):
        # The _shard_worker pattern: pass names/bytes, re-open in child.
        safe = """
import multiprocessing

def worker(shm_name, count):
    pass

def spawn(shm_name):
    p = multiprocessing.Process(target=worker, args=(shm_name, 3))
    p.start()
"""
        assert check_source(safe, module="repro.fixmod", rules=["THR004"]) == []


# ----------------------------------------------------------------------
# RES001 — resource lifetime / escape analysis
# ----------------------------------------------------------------------
class TestRES001:
    def test_leaked_shared_memory_detected(self):
        leaky = """
from multiprocessing import shared_memory

def attach(name):
    shm = shared_memory.SharedMemory(name=name)
    return bytes(shm.buf[:4])
"""
        findings = check_source(leaky, module="repro.fixmod", rules=["RES001"])
        assert _ids(findings) == ["RES001"]
        assert "shared-memory block 'shm'" in findings[0].message
        assert "never released" in findings[0].message

    def test_straight_line_close_with_risk_between_detected(self):
        risky = """
from multiprocessing import shared_memory

def process(buf):
    pass

def attach(name):
    shm = shared_memory.SharedMemory(name=name)
    process(shm.buf)
    shm.close()
"""
        findings = check_source(risky, module="repro.fixmod", rules=["RES001"])
        assert _ids(findings) == ["RES001"]
        assert "straight-line path" in findings[0].message

    def test_try_finally_release_is_clean(self):
        safe = """
from multiprocessing import shared_memory

def use(buf):
    pass

def attach(name):
    shm = shared_memory.SharedMemory(name=name)
    try:
        use(shm.buf)
    finally:
        shm.close()
"""
        assert check_source(safe, module="repro.fixmod", rules=["RES001"]) == []

    def test_risky_gap_before_protecting_try_detected(self):
        gappy = """
from multiprocessing import shared_memory

def validate(name):
    pass

def use(buf):
    pass

def attach(name):
    shm = shared_memory.SharedMemory(name=name)
    validate(name)
    try:
        use(shm.buf)
    finally:
        shm.close()
"""
        findings = check_source(gappy, module="repro.fixmod", rules=["RES001"])
        assert _ids(findings) == ["RES001"]
        assert "protecting 'try'" in findings[0].message

    def test_with_statement_is_clean(self):
        safe = """
def read(path):
    with open(path) as fh:
        return fh.read()
"""
        assert check_source(safe, module="repro.fixmod", rules=["RES001"]) == []

    def test_escaping_resource_is_owned_elsewhere(self):
        factory = """
from multiprocessing import shared_memory

def make(name):
    shm = shared_memory.SharedMemory(name=name, create=True)
    return shm
"""
        assert check_source(factory, module="repro.fixmod", rules=["RES001"]) == []

    def test_lock_acquire_without_finally_detected(self):
        risky = """
def do_work():
    pass

def locked(lk):
    lk.acquire()
    do_work()
    lk.release()
"""
        findings = check_source(risky, module="repro.fixmod", rules=["RES001"])
        assert _ids(findings) == ["RES001"]
        assert "acquired lock 'lk'" in findings[0].message

    def test_noqa_suppresses_with_justification(self):
        leaky = """
from multiprocessing import shared_memory

def attach(name):
    shm = shared_memory.SharedMemory(name=name)  # repro: noqa[RES001] — child-owned, parent unlinks
    return bytes(shm.buf[:4])
"""
        assert check_source(leaky, module="repro.fixmod", rules=["RES001"]) == []


# ----------------------------------------------------------------------
# The shipped tree under the four new rules
# ----------------------------------------------------------------------
def test_shipped_tree_is_clean_under_concurrency_rules():
    from repro.devtools import Baseline, run_check

    report = run_check(
        rules=["THR002", "THR003", "THR004", "RES001"], baseline=Baseline()
    )
    details = "\n".join(f.render() for f in report.findings)
    assert report.ok, f"concurrency rules found live violations:\n{details}"
