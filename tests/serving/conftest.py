"""Serving-layer fixtures.

The equivalence tests need *two* pipelines that behave identically —
same architecture, same device seed, same trained weights — so one can
drive a sequential ``run_online`` loop while the other serves the same
request stream through :class:`SelectionService`.  Training cost is paid
once per session via the ``tiny_models`` fixture.
"""

from __future__ import annotations

import pytest

from repro.gpusim import GA100, NoiseModel, SimulatedGPU

from tests.golden.tiny_pipeline import EVAL_DEVICE_SEED, MAX_SAMPLES_PER_RUN, make_tiny_pipeline


@pytest.fixture()
def pipeline_pair(tiny_models):
    """Two bitwise-identical fresh pipelines sharing the tiny models."""
    return (
        make_tiny_pipeline(tiny_models, device_seed=EVAL_DEVICE_SEED),
        make_tiny_pipeline(tiny_models, device_seed=EVAL_DEVICE_SEED),
    )


@pytest.fixture()
def quiet_pipeline(tiny_models):
    """Pipeline on a noise-free device — repeat measurements are identical."""
    device = SimulatedGPU(
        GA100,
        seed=0,
        noise=NoiseModel.disabled(),
        max_samples_per_run=MAX_SAMPLES_PER_RUN,
    )
    return make_tiny_pipeline(tiny_models, device=device)
