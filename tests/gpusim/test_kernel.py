"""KernelCensus validation and arithmetic tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpusim import KernelCensus


def make_census(**overrides):
    kwargs = dict(flops_fp64=1e12, dram_bytes=1e11)
    kwargs.update(overrides)
    return KernelCensus(**kwargs)


class TestValidation:
    def test_valid_minimal(self):
        c = make_census()
        assert c.total_flops == 1e12

    def test_negative_flops_rejected(self):
        with pytest.raises(ValueError, match="flops_fp64"):
            make_census(flops_fp64=-1.0)

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError, match="dram_bytes"):
            make_census(dram_bytes=-1.0)

    def test_zero_work_rejected(self):
        with pytest.raises(ValueError, match="some GPU work"):
            KernelCensus(flops_fp64=0.0, flops_fp32=0.0, dram_bytes=0.0)

    def test_occupancy_zero_rejected(self):
        with pytest.raises(ValueError, match="occupancy"):
            make_census(occupancy=0.0)

    def test_occupancy_above_one_rejected(self):
        with pytest.raises(ValueError, match="occupancy"):
            make_census(occupancy=1.5)

    def test_efficiency_bounds(self):
        with pytest.raises(ValueError, match="compute_efficiency"):
            make_census(compute_efficiency=0.0)
        with pytest.raises(ValueError, match="memory_efficiency"):
            make_census(memory_efficiency=1.01)

    def test_serial_fraction_bounds(self):
        with pytest.raises(ValueError, match="serial_fraction"):
            make_census(serial_fraction=1.0)
        with pytest.raises(ValueError, match="serial_fraction"):
            make_census(serial_fraction=-0.1)

    def test_latency_fraction_bounds(self):
        with pytest.raises(ValueError, match="compute_latency_fraction"):
            make_census(compute_latency_fraction=1.0)

    def test_negative_host_fraction_rejected(self):
        with pytest.raises(ValueError, match="concurrent_host_fraction"):
            make_census(concurrent_host_fraction=-0.5)


class TestDerived:
    def test_total_flops_sums_precisions(self):
        c = make_census(flops_fp64=3e9, flops_fp32=2e9)
        assert c.total_flops == pytest.approx(5e9)

    def test_total_pcie(self):
        c = make_census(pcie_tx_bytes=100.0, pcie_rx_bytes=200.0)
        assert c.total_pcie_bytes == pytest.approx(300.0)

    def test_arithmetic_intensity(self):
        c = make_census(flops_fp64=1e12, dram_bytes=1e11)
        assert c.arithmetic_intensity == pytest.approx(10.0)

    def test_arithmetic_intensity_no_dram(self):
        c = KernelCensus(flops_fp64=1e12, dram_bytes=0.0)
        assert c.arithmetic_intensity == float("inf")


class TestScaled:
    def test_traffic_scales_linearly(self):
        c = make_census(pcie_tx_bytes=10.0, pcie_rx_bytes=20.0)
        s = c.scaled(3.0)
        assert s.flops_fp64 == pytest.approx(3e12)
        assert s.dram_bytes == pytest.approx(3e11)
        assert s.pcie_tx_bytes == pytest.approx(30.0)

    def test_intensive_properties_preserved(self):
        c = make_census(occupancy=0.7, serial_fraction=0.1, compute_latency_fraction=0.2)
        s = c.scaled(5.0)
        assert s.occupancy == c.occupancy
        assert s.serial_fraction == c.serial_fraction
        assert s.compute_latency_fraction == c.compute_latency_fraction

    def test_nonpositive_factor_rejected(self):
        with pytest.raises(ValueError, match="factor"):
            make_census().scaled(0.0)

    @given(factor=st.floats(min_value=0.01, max_value=100.0, allow_nan=False))
    @settings(max_examples=50, deadline=None)
    def test_intensity_invariant_under_scaling(self, factor):
        c = make_census()
        assert c.scaled(factor).arithmetic_intensity == pytest.approx(c.arithmetic_intensity)
