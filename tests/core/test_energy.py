"""Energy and objective-function tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ED2P, EDP, EDnP, ObjectiveFunction, energy_from_power_time


class TestEnergy:
    def test_elementwise_product(self):
        e = energy_from_power_time(np.array([100.0, 200.0]), np.array([2.0, 0.5]))
        assert np.allclose(e, [200.0, 100.0])

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="mismatch"):
            energy_from_power_time(np.zeros(2), np.zeros(3))

    def test_negative_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            energy_from_power_time(np.array([-1.0]), np.array([1.0]))


class TestEDnP:
    def test_edp_is_exponent_one(self):
        assert EDP.n == 1.0
        assert EDP.name == "EDP"

    def test_ed2p_is_exponent_two(self):
        assert ED2P.n == 2.0
        assert ED2P.name == "ED2P"

    def test_custom_exponent_name(self):
        assert EDnP(3.0).name == "ED3P"
        assert EDnP(1.5).name == "ED1.5P"

    def test_values(self):
        e = np.array([10.0])
        t = np.array([2.0])
        assert EDP(e, t)[0] == pytest.approx(20.0)
        assert ED2P(e, t)[0] == pytest.approx(40.0)

    def test_zero_exponent_is_energy(self):
        e = np.array([7.0, 3.0])
        t = np.array([2.0, 9.0])
        assert np.allclose(EDnP(0.0)(e, t), e)

    def test_negative_exponent_rejected(self):
        with pytest.raises(ValueError, match="exponent"):
            EDnP(-1.0)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="mismatch"):
            EDP(np.zeros(2), np.zeros(3))

    def test_satisfies_protocol(self):
        assert isinstance(EDP, ObjectiveFunction)
        assert isinstance(ED2P, ObjectiveFunction)

    def test_custom_callable_satisfies_protocol(self):
        class PowerOnly:
            name = "power-only"

            def __call__(self, energy_j, time_s):
                return energy_j / time_s

        assert isinstance(PowerOnly(), ObjectiveFunction)

    @given(
        e=st.floats(min_value=0.1, max_value=1e6),
        t1=st.floats(min_value=0.1, max_value=1e3),
        t2=st.floats(min_value=0.1, max_value=1e3),
    )
    @settings(max_examples=60, deadline=None)
    def test_ed2p_weights_delay_more(self, e, t1, t2):
        """If t1 < t2 at equal energy, ED2P's preference margin >= EDP's."""
        lo, hi = min(t1, t2), max(t1, t2)
        edp_ratio = EDP(np.array([e]), np.array([hi]))[0] / EDP(np.array([e]), np.array([lo]))[0]
        ed2p_ratio = ED2P(np.array([e]), np.array([hi]))[0] / ED2P(np.array([e]), np.array([lo]))[0]
        assert ed2p_ratio >= edp_ratio - 1e-12
