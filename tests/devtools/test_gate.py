"""Tier-1 gate: the shipped tree must pass its own invariant checker.

This is the enforcement point — every non-slow pytest run re-checks the
whole source tree.  A new violation fails CI here; the fix is to repair
the code, add a justified ``# repro: noqa[RULE]``, or (rarely) a
justified baseline entry.
"""

from __future__ import annotations

from repro.devtools import default_baseline_path, default_root, rule_ids, run_check

_REPORT = run_check()


def test_tree_has_zero_live_violations():
    details = "\n".join(f.render() for f in _REPORT.findings + _REPORT.parse_errors)
    assert _REPORT.ok, f"repro check found live violations:\n{details}"


def test_no_stale_baseline_entries():
    stale = "\n".join(f"{e.path}: {e.rule} {e.message!r}" for e in _REPORT.stale_baseline)
    assert not _REPORT.stale_baseline, f"stale baseline entries to remove:\n{stale}"


def test_every_baseline_entry_is_justified():
    from repro.devtools import Baseline

    baseline = Baseline.load(default_baseline_path())
    # An entry may carry its own justification or inherit its rule's
    # shared one from `rule_justifications` — but never neither.
    unjustified = [e for e in baseline.entries if not baseline.effective_justification(e).strip()]
    assert not unjustified, f"baseline entries without justification: {unjustified}"


def test_at_least_five_rules_ran():
    assert len(_REPORT.rules_run) >= 5
    assert set(_REPORT.rules_run) == set(rule_ids())


def test_full_tree_check_is_fast():
    # The gate runs on every pytest invocation; keep it well under 5 s.
    assert _REPORT.duration_s < 5.0, f"check took {_REPORT.duration_s:.2f}s"


def test_checked_the_real_tree():
    assert _REPORT.files_checked > 50
    assert (default_root() / "repro" / "__init__.py").exists()


def test_concurrency_rules_are_registered_and_ran():
    for rule_id in ("THR002", "THR003", "THR004", "RES001"):
        assert rule_id in rule_ids()
        assert rule_id in _REPORT.rules_run


def test_numeric_rules_are_registered_and_ran():
    for rule_id in ("NUM002", "SHAPE001", "PERF001", "PURE001"):
        assert rule_id in rule_ids()
        assert rule_id in _REPORT.rules_run


def test_report_carries_per_rule_timings():
    # --stats feeds off these; every rule that ran gets a wall-time row.
    assert "parse" in _REPORT.timings
    for rule_id in _REPORT.rules_run:
        assert rule_id in _REPORT.timings


def test_parallel_parse_matches_sequential():
    parallel = run_check(jobs=2)
    assert [f.to_dict() for f in parallel.findings] == [
        f.to_dict() for f in _REPORT.findings
    ]
    assert parallel.files_checked == _REPORT.files_checked
    assert parallel.jobs == 2


# ----------------------------------------------------------------------
# CLI error paths: every usage error exits 2 (distinct from 1 = findings)
# ----------------------------------------------------------------------
def test_cli_unknown_rule_id_in_select_exits_2(capsys):
    from repro.cli import main

    assert main(["check", "--select", "THR999"]) == 2
    err = capsys.readouterr().err
    assert "unknown rule ids: THR999" in err
    # The error names the known ids so the fix is a copy-paste away.
    assert "THR002" in err


def test_cli_missing_baseline_file_exits_2(tmp_path, capsys):
    from repro.cli import main

    missing = tmp_path / "does_not_exist.json"
    assert main(["check", "--baseline", str(missing)]) == 2
    assert "no such baseline" in capsys.readouterr().err


def test_cli_non_package_target_dir_exits_2(tmp_path, capsys):
    from repro.cli import main

    # tmp_path has no 'repro' package under it.
    assert main(["check", "--root", str(tmp_path)]) == 2
    assert "repro" in capsys.readouterr().err


def test_cli_select_is_an_alias_for_rules(capsys):
    from repro.cli import main

    assert main(["check", "--select", "THR002,THR003,THR004,RES001"]) == 0
    assert "4 rules" in capsys.readouterr().out
