"""Architecture specification tests (paper Table 1 fidelity)."""

import pytest

from repro.gpusim import GA100, GV100, GPUArchitecture, get_architecture, list_architectures, register_architecture


class TestTable1Fidelity:
    """The simulator must be parameterised with the paper's exact specs."""

    def test_ga100_core_freq_range(self):
        assert GA100.core_freq_min_mhz == 210.0
        assert GA100.core_freq_max_mhz == 1410.0

    def test_ga100_default_clock(self):
        assert GA100.default_core_freq_mhz == 1410.0

    def test_ga100_memory(self):
        assert GA100.memory_freq_mhz == 1597.0
        assert GA100.memory_gib == 80.0
        assert GA100.peak_memory_bandwidth == pytest.approx(2039e9)

    def test_ga100_tdp(self):
        assert GA100.tdp_watts == 500.0

    def test_ga100_usable_floor_is_510(self):
        assert GA100.usable_freq_min_mhz == 510.0

    def test_gv100_core_freq_range(self):
        assert GV100.core_freq_min_mhz == 135.0
        assert GV100.core_freq_max_mhz == 1380.0

    def test_gv100_default_clock(self):
        assert GV100.default_core_freq_mhz == 1380.0

    def test_gv100_memory(self):
        assert GV100.memory_freq_mhz == 877.0
        assert GV100.memory_gib == 40.0
        assert GV100.peak_memory_bandwidth == pytest.approx(900e9)

    def test_gv100_tdp(self):
        assert GV100.tdp_watts == 250.0


class TestDerivedProperties:
    def test_idle_power_is_fraction_of_tdp(self):
        assert GA100.idle_power_watts == pytest.approx(GA100.idle_power_fraction * 500.0)

    def test_with_overrides_returns_copy(self):
        modified = GA100.with_overrides(tdp_watts=400.0)
        assert modified.tdp_watts == 400.0
        assert GA100.tdp_watts == 500.0
        assert modified.name == GA100.name

    def test_voltage_envelope_ordering(self):
        assert GA100.voltage_min < GA100.voltage_max


class TestValidation:
    def _base_kwargs(self):
        return dict(
            name="TEST",
            core_freq_min_mhz=100.0,
            core_freq_max_mhz=1000.0,
            core_freq_step_mhz=10.0,
            default_core_freq_mhz=1000.0,
            usable_freq_min_mhz=500.0,
            memory_freq_mhz=800.0,
            memory_gib=16.0,
            peak_memory_bandwidth=1e12,
            tdp_watts=300.0,
            peak_flops_fp64=1e13,
            peak_flops_fp32=2e13,
            pcie_bandwidth=2e10,
        )

    def test_valid_construction(self):
        arch = GPUArchitecture(**self._base_kwargs())
        assert arch.name == "TEST"

    def test_min_above_max_rejected(self):
        kwargs = self._base_kwargs()
        kwargs["core_freq_min_mhz"] = 2000.0
        with pytest.raises(ValueError, match="core_freq_min_mhz"):
            GPUArchitecture(**kwargs)

    def test_nonpositive_step_rejected(self):
        kwargs = self._base_kwargs()
        kwargs["core_freq_step_mhz"] = 0.0
        with pytest.raises(ValueError, match="step"):
            GPUArchitecture(**kwargs)

    def test_usable_floor_outside_range_rejected(self):
        kwargs = self._base_kwargs()
        kwargs["usable_freq_min_mhz"] = 50.0
        with pytest.raises(ValueError, match="usable"):
            GPUArchitecture(**kwargs)

    def test_default_clock_outside_range_rejected(self):
        kwargs = self._base_kwargs()
        kwargs["default_core_freq_mhz"] = 5000.0
        with pytest.raises(ValueError, match="default"):
            GPUArchitecture(**kwargs)

    def test_nonpositive_tdp_rejected(self):
        kwargs = self._base_kwargs()
        kwargs["tdp_watts"] = -1.0
        with pytest.raises(ValueError, match="tdp"):
            GPUArchitecture(**kwargs)

    def test_idle_fraction_bounds(self):
        kwargs = self._base_kwargs()
        kwargs["idle_power_fraction"] = 1.0
        with pytest.raises(ValueError, match="idle_power_fraction"):
            GPUArchitecture(**kwargs)

    def test_inverted_voltage_envelope_rejected(self):
        kwargs = self._base_kwargs()
        kwargs["voltage_min"] = 1.2
        with pytest.raises(ValueError, match="voltage"):
            GPUArchitecture(**kwargs)


class TestRegistry:
    def test_builtins_registered(self):
        assert "GA100" in list_architectures()
        assert "GV100" in list_architectures()

    def test_lookup_case_insensitive(self):
        assert get_architecture("ga100") is GA100
        assert get_architecture("Gv100") is GV100

    def test_unknown_name_raises_with_known_list(self):
        with pytest.raises(KeyError, match="GA100"):
            get_architecture("H100")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_architecture(GA100)

    def test_overwrite_allows_replacement(self):
        register_architecture(GA100, overwrite=True)
        assert get_architecture("GA100") is GA100
