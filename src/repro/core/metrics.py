"""Prediction-quality metrics.

The paper reports model quality as ``accuracy = 100 % - MAPE`` (Section 5.1
uses mean absolute percentage error via scikit-learn).  RMSE and R^2 are
included for the ablation benches.
"""

from __future__ import annotations

import numpy as np

__all__ = ["mape", "accuracy_percent", "rmse", "r2_score"]


def _check(y_true: np.ndarray, y_pred: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    y_true = np.asarray(y_true, dtype=float).reshape(-1)
    y_pred = np.asarray(y_pred, dtype=float).reshape(-1)
    if y_true.size != y_pred.size:
        raise ValueError(f"length mismatch: {y_true.size} true vs {y_pred.size} predicted")
    if y_true.size == 0:
        raise ValueError("empty inputs")
    return y_true, y_pred


def mape(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Mean absolute percentage error, in percent.

    Raises on zero true values rather than returning infinity — power and
    time are strictly positive, so a zero signals an upstream bug.
    """
    y_true, y_pred = _check(y_true, y_pred)
    if np.any(y_true == 0.0):  # repro: noqa[NUM001] — exact zero screen: any zero true value is an upstream bug
        raise ValueError("MAPE undefined for zero true values")
    return float(100.0 * np.mean(np.abs((y_pred - y_true) / y_true)))


def accuracy_percent(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """The paper's accuracy metric: ``100 - MAPE`` (floored at 0)."""
    return max(0.0, 100.0 - mape(y_true, y_pred))


def rmse(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Root mean squared error."""
    y_true, y_pred = _check(y_true, y_pred)
    return float(np.sqrt(np.mean((y_pred - y_true) ** 2)))


def r2_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Coefficient of determination."""
    y_true, y_pred = _check(y_true, y_pred)
    ss_res = float(np.sum((y_true - y_pred) ** 2))
    ss_tot = float(np.sum((y_true - y_true.mean()) ** 2))
    if ss_tot <= 0.0:
        return 1.0 if ss_res <= 0.0 else 0.0
    return 1.0 - ss_res / ss_tot
