"""Multiple linear regression (the paper's MLR baseline)."""

from __future__ import annotations

import numpy as np

__all__ = ["MultipleLinearRegression"]


class MultipleLinearRegression:
    """Ordinary least squares ``y = X beta + b`` via lstsq.

    Uses the minimum-norm least-squares solution, so collinear feature
    sets fit without blowing up.
    """

    def __init__(self, fit_intercept: bool = True) -> None:
        self.fit_intercept = fit_intercept
        self.coef_: np.ndarray | None = None
        self.intercept_: float = 0.0

    def fit(self, x: np.ndarray, y: np.ndarray) -> "MultipleLinearRegression":
        """Solve for coefficients; returns self."""
        x = np.atleast_2d(np.asarray(x, dtype=float))
        y = np.asarray(y, dtype=float).reshape(-1)
        if x.shape[0] != y.size:
            raise ValueError(f"X has {x.shape[0]} rows but y has {y.size}")
        if self.fit_intercept:
            design = np.column_stack([x, np.ones(x.shape[0])])
        else:
            design = x
        beta, *_ = np.linalg.lstsq(design, y, rcond=None)
        if self.fit_intercept:
            self.coef_ = beta[:-1]
            self.intercept_ = float(beta[-1])
        else:
            self.coef_ = beta
            self.intercept_ = 0.0
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Predictions for a (samples, features) array."""
        if self.coef_ is None:
            raise RuntimeError("predict called before fit")
        x = np.atleast_2d(np.asarray(x, dtype=float))
        return x @ self.coef_ + self.intercept_

    def score(self, x: np.ndarray, y: np.ndarray) -> float:
        """Coefficient of determination R^2."""
        y = np.asarray(y, dtype=float).reshape(-1)
        pred = self.predict(x)
        ss_res = float(np.sum((y - pred) ** 2))
        ss_tot = float(np.sum((y - y.mean()) ** 2))
        if ss_tot <= 0.0:
            # Constant target: perfect up to float noise, else undefined -> 0.
            return 1.0 if ss_res <= 1e-10 * max(1.0, float(np.sum(y**2))) else 0.0
        return 1.0 - ss_res / ss_tot
