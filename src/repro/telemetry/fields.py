"""DCGM-style field registry for the 12 collected metrics.

Field ids follow the real DCGM numbering where one exists (``dcgm_fields.h``)
so that CSVs produced here line up with what the paper's framework would
emit: profiling fields live in the 1001-1012 range, device fields below
1000.  ``exec_time`` is the one synthetic field (DCGM reports it via the
job-stats interface rather than a field id); it gets a private id in the
vendor-reserved range.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["FieldDef", "FIELDS", "field_by_name", "field_by_id"]


@dataclass(frozen=True)
class FieldDef:
    """One collectable metric."""

    field_id: int
    name: str
    unit: str
    description: str
    #: Whether per-sample values are summed (traffic counters) rather than
    #: averaged when aggregating a run.
    cumulative: bool = False


#: The 12 metrics of paper Section 4.1, keyed by the paper's names.
FIELDS: tuple[FieldDef, ...] = (
    FieldDef(1006, "fp64_active", "ratio", "Fraction of cycles the FP64 pipes are active"),
    FieldDef(1007, "fp32_active", "ratio", "Fraction of cycles the FP32 pipes are active"),
    FieldDef(100, "sm_app_clock", "MHz", "Applied SM application clock"),
    FieldDef(1005, "dram_active", "ratio", "Fraction of cycles the DRAM interface is active"),
    FieldDef(1001, "gr_engine_active", "ratio", "Fraction of time the graphics/compute engine is active"),
    FieldDef(203, "gpu_utilization", "percent", "Coarse GPU utilization"),
    FieldDef(155, "power_usage", "W", "Board power draw"),
    FieldDef(1002, "sm_active", "ratio", "Fraction of time at least one warp is resident"),
    FieldDef(1003, "sm_occupancy", "ratio", "Resident warps / maximum warps"),
    FieldDef(1009, "pcie_tx_bytes", "B", "PCIe bytes transmitted (device to host)", cumulative=True),
    FieldDef(1010, "pcie_rx_bytes", "B", "PCIe bytes received (host to device)", cumulative=True),
    FieldDef(9001, "exec_time", "s", "Wall-clock execution time of the run"),
)

_BY_NAME = {f.name: f for f in FIELDS}
_BY_ID = {f.field_id: f for f in FIELDS}


def field_by_name(name: str) -> FieldDef:
    """Look up a field by its paper name."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(f"unknown field {name!r}; known: {sorted(_BY_NAME)}") from None


def field_by_id(field_id: int) -> FieldDef:
    """Look up a field by its DCGM field id."""
    try:
        return _BY_ID[field_id]
    except KeyError:
        raise KeyError(f"unknown field id {field_id}; known: {sorted(_BY_ID)}") from None
