"""Figure 3: mutual-information feature ranking.

Shape assertion: the combined top-3 is exactly the paper's selected
triple {fp_active, sm_app_clock, dram_active}.
"""

import pytest

from repro.experiments.fig3 import render_fig3, run_fig3


@pytest.fixture(scope="module")
def fig3(ctx):
    return run_fig3(ctx)


def test_fig3_regenerate(benchmark, ctx, fig3, report):
    benchmark.pedantic(run_fig3, args=(ctx,), kwargs={"mi_subsample": 2000}, rounds=1, iterations=1)
    report("Figure 3 - feature MI ranking", render_fig3(fig3))


def test_fig3_paper_triple_selected(fig3):
    assert set(fig3.selected) == {"fp64_active", "sm_app_clock", "dram_active"}


def test_fig3_irrelevant_features_score_low(fig3):
    p = dict(zip(fig3.power_ranking.feature_names, fig3.power_ranking.normalized()))
    for weak in ("gpu_utilization", "gr_engine_active"):
        assert p[weak] < 0.5
