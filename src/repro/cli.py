"""Command-line interface.

Mirrors how the paper's framework is operated:

``repro specs``
    Print the Table 1 specifications of a simulated GPU.
``repro collect``
    Run a collection campaign (workloads x clocks x runs) and persist
    one CSV of 20 ms samples per run — the launch module's job.
``repro train``
    Train the power/time DNNs from a persisted campaign directory and
    save the weights.
``repro predict``
    Online phase: profile one application at the default clock with
    saved models and print the selected frequencies.
``repro select``
    Batched online phase: decide many applications through the
    :mod:`repro.serving` selection service (one stacked DNN pass per
    micro-batch, memoized curves for repeats).
``repro serve``
    Service loop: read JSON-lines requests from a file or stdin, answer
    each with the selected frequencies, print service stats at the end.
``repro fleet``
    Run one named fleet scenario (``baseline``, ``capped``,
    ``flash-crowd``, ``node-churn``, ``day``) through the
    :mod:`repro.fleet` simulator: hundreds of GPUs, stochastic
    arrivals, per-node selection services, facility power capping and
    failure injection — bitwise-reproducible from (scenario, seed).
``repro experiment``
    Regenerate one paper figure/table and print it.
``repro obs``
    Observability utilities: ``summarize`` a trace JSONL into per-span
    latency percentiles (``--format json|text``), ``analyze`` it into a
    span tree (self- vs cumulative-time attribution, critical path,
    collapsed-stack flamegraph export, per-phase diff against a second
    trace), ``export`` the process metrics registry as Prometheus text
    or JSON.
``repro report``
    Performance trajectory report over the committed ``BENCH_*.json``
    files (and an optional run-history store): markdown/GitHub/text
    table of every tracked hot-path metric vs its best record.
    ``--gate`` exits 2 when any metric regressed more than
    ``--tolerance`` (default 10%) — the CI bench gate.
``repro check``
    Static invariant checker (see :mod:`repro.devtools`): AST rules for
    determinism, lock discipline, float comparisons, observability
    hygiene, physical units and seed lineage over the whole source
    tree.  Exit 0 when clean, 1 on violations.
``repro graph``
    Dump the interprocedural project index: the call graph as JSON or
    Graphviz DOT (``--format``), or the declared physical-unit table
    (``--units``).

Two global flags (they go *before* the subcommand) apply to every
command: ``--trace PATH`` streams span/event records from all
instrumented layers (see :mod:`repro.obs`) to a JSONL file, and
``--manifest PATH`` writes a run manifest.  ``collect`` and ``train``
also drop a ``run_manifest.json`` alongside their outputs
automatically.

Every subcommand runs against the simulator, so the whole flow works on
a laptop with no GPU.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro import obs
from repro.core.dataset import dataset_from_csv_dir
from repro.core.energy import ED2P, EDP
from repro.core.models import PowerModel, TimeModel
from repro.core.pipeline import FrequencySelectionPipeline
from repro.gpusim.arch import get_architecture, list_architectures
from repro.gpusim.device import SimulatedGPU
from repro.telemetry.launch import LaunchConfig, Launcher
from repro.workloads.registry import default_registry

__all__ = ["main", "build_parser"]

_EXPERIMENTS = {
    "fig1", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11",
    "tab1", "tab3", "tab4", "tab5", "tab6",
    "pareto_study", "capping_study", "cluster_study", "phase_study", "gv100_savings",
}


def build_parser() -> argparse.ArgumentParser:
    """The full repro CLI argument schema."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DNN-based GPU DVFS frequency selection (ICPP 2023 reproduction)",
    )
    parser.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="write a JSONL span trace of this invocation (global; before the subcommand)",
    )
    parser.add_argument(
        "--manifest",
        metavar="PATH",
        default=None,
        help="write a run manifest to PATH (collect/train always write one next to --out)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_specs = sub.add_parser("specs", help="print GPU specifications (Table 1)")
    p_specs.add_argument("--arch", default="GA100", help="architecture name")

    p_collect = sub.add_parser("collect", help="run a collection campaign")
    p_collect.add_argument("--arch", default="GA100")
    p_collect.add_argument("--workloads", default="dgemm,stream", help="comma-separated names, or 'training'")
    p_collect.add_argument("--runs", type=int, default=3, help="runs per configuration")
    p_collect.add_argument("--out", required=True, help="output directory for CSVs")
    p_collect.add_argument("--seed", type=int, default=0)
    p_collect.add_argument("--max-samples", type=int, default=48, help="sensor samples kept per run")
    p_collect.add_argument(
        "--freqs", default="all", help="'all' (usable grid) or comma-separated MHz values"
    )

    p_train = sub.add_parser("train", help="train power/time models from a campaign")
    p_train.add_argument("--data", required=True, help="campaign directory from 'collect'")
    p_train.add_argument("--out", required=True, help="directory to write model archives")
    p_train.add_argument("--arch", default="GA100", help="training architecture (TDP normalisation)")
    p_train.add_argument("--power-epochs", type=int, default=100)
    p_train.add_argument("--time-epochs", type=int, default=25)
    p_train.add_argument("--seed", type=int, default=0)

    p_predict = sub.add_parser("predict", help="online phase for one application")
    p_predict.add_argument("--models", required=True, help="directory from 'train'")
    p_predict.add_argument("--arch", default="GA100")
    p_predict.add_argument("--workload", required=True)
    p_predict.add_argument("--threshold", type=float, default=None, help="perf degradation bound (fraction)")
    p_predict.add_argument("--seed", type=int, default=0)

    p_select = sub.add_parser("select", help="batched online phase for many applications")
    p_select.add_argument("--models", required=True, help="directory from 'train'")
    p_select.add_argument("--arch", default="GA100")
    p_select.add_argument(
        "--workloads", required=True, help="comma-separated names, or 'training'/'evaluation'"
    )
    p_select.add_argument("--batch", type=int, default=64, help="requests per service flush")
    p_select.add_argument("--threshold", type=float, default=None, help="perf degradation bound (fraction)")
    p_select.add_argument("--seed", type=int, default=0)
    p_select.add_argument(
        "--fused",
        action="store_true",
        help="folded-weight fast inference (1e-9 equivalence instead of bitwise)",
    )
    p_select.add_argument(
        "--shards", type=int, default=1, help="inference worker processes (1 = in-process)"
    )
    p_select.add_argument("--stats", action="store_true", help="print service stats afterwards")

    p_serve = sub.add_parser("serve", help="JSONL frequency-selection service loop")
    p_serve.add_argument("--models", required=True, help="directory from 'train'")
    p_serve.add_argument("--arch", default="GA100")
    p_serve.add_argument(
        "--input", default="-", help="JSONL request file, or '-' for stdin (default)"
    )
    p_serve.add_argument("--batch", type=int, default=64, help="requests per service flush")
    p_serve.add_argument("--threshold", type=float, default=None, help="perf degradation bound (fraction)")
    p_serve.add_argument("--seed", type=int, default=0)
    p_serve.add_argument(
        "--fused",
        action="store_true",
        help="folded-weight fast inference (1e-9 equivalence instead of bitwise)",
    )
    p_serve.add_argument(
        "--shards", type=int, default=1, help="inference worker processes (1 = in-process)"
    )
    p_serve.add_argument("--stats", action="store_true", help="print service stats to stderr")

    p_fleet = sub.add_parser("fleet", help="run a named fleet scenario")
    p_fleet.add_argument(
        "--scenario", default="baseline", help="named scenario (see --list)"
    )
    p_fleet.add_argument("--seed", type=int, default=0)
    p_fleet.add_argument(
        "--out", metavar="PATH", default=None, help="write the fleet metrics JSON here"
    )
    p_fleet.add_argument(
        "--rate-factor", type=float, default=1.0, help="scale the arrival rate"
    )
    p_fleet.add_argument(
        "--duration-factor", type=float, default=1.0, help="scale the submission window"
    )
    p_fleet.add_argument(
        "--list", action="store_true", help="list named scenarios and exit"
    )

    p_exp = sub.add_parser("experiment", help="regenerate one paper figure/table")
    p_exp.add_argument("name", choices=sorted(_EXPERIMENTS))
    p_exp.add_argument("--fast", action="store_true", help="cheap profile (seconds, noisier)")
    p_exp.add_argument("--seed", type=int, default=0)

    p_obs = sub.add_parser("obs", help="observability utilities")
    obs_sub = p_obs.add_subparsers(dest="obs_command", required=True)
    # dest must not collide with the global --trace flag (both would
    # land on args.trace and the summarize target would get traced).
    p_sum = obs_sub.add_parser("summarize", help="per-span latency report from a trace JSONL")
    p_sum.add_argument("trace_file", metavar="trace", help="trace file written via --trace")
    p_sum.add_argument("--top", type=int, default=None, help="show only the N largest spans")
    p_sum.add_argument(
        "--format", choices=("text", "json"), default="text", help="table or raw summary JSON"
    )
    p_ana = obs_sub.add_parser(
        "analyze", help="span-tree attribution / flamegraph / diff from a trace JSONL"
    )
    p_ana.add_argument("trace_file", metavar="trace", help="trace file written via --trace")
    p_ana.add_argument(
        "--diff", metavar="OTHER", default=None, help="second trace: print the per-phase delta table"
    )
    p_ana.add_argument(
        "--flamegraph",
        metavar="OUT",
        default=None,
        help="write collapsed stacks (flamegraph.pl / speedscope) to OUT",
    )
    p_ana.add_argument(
        "--critical-path", action="store_true", help="print the heaviest root-to-leaf chain"
    )
    p_ana.add_argument("--top", type=int, default=None, help="show only the N largest rows")
    p_ana.add_argument(
        "--format", choices=("text", "markdown"), default="text", help="table style"
    )
    p_exp_reg = obs_sub.add_parser("export", help="export the process metrics registry")
    p_exp_reg.add_argument(
        "--format", choices=("prom", "json"), default="prom", help="exposition format"
    )

    p_report = sub.add_parser(
        "report", help="performance trajectory report + regression gate (BENCH_*.json)"
    )
    p_report.add_argument(
        "--root",
        default=None,
        help="directory holding the BENCH_*.json files (default: cwd, else the checkout)",
    )
    p_report.add_argument(
        "--store",
        metavar="PATH",
        default=None,
        help="run-history store JSONL to consult (its best values tighten the gate)",
    )
    p_report.add_argument(
        "--record",
        action="store_true",
        help="append the current bench points to --store before reporting",
    )
    p_report.add_argument(
        "--gate",
        action="store_true",
        help="exit 2 when any tracked metric regressed more than --tolerance vs its best",
    )
    p_report.add_argument(
        "--tolerance",
        type=float,
        default=0.10,
        help="allowed fractional regression past each metric's best (default 0.10)",
    )
    p_report.add_argument(
        "--format",
        choices=("markdown", "github", "text"),
        default="markdown",
        help="report format ('github' adds ::error annotations for regressions)",
    )

    p_check = sub.add_parser(
        "check", help="static invariant checker (determinism, locking, numerics)"
    )
    p_check.add_argument(
        "--format",
        choices=("text", "json", "github"),
        default="text",
        help="report format ('github' emits ::error workflow annotations)",
    )
    p_check.add_argument(
        "--root",
        default=None,
        help="directory containing the 'repro' package (default: the installed tree)",
    )
    p_check.add_argument(
        "--baseline",
        metavar="PATH",
        default=None,
        help="baseline file (default: the committed baseline.json)",
    )
    p_check.add_argument(
        "--no-baseline", action="store_true", help="report baselined findings as live"
    )
    p_check.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline with every current finding (justifications required before commit)",
    )
    p_check.add_argument(
        "--select",
        "--rules",
        dest="rules",
        default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    p_check.add_argument(
        "--list-rules", action="store_true", help="list registered rules and exit"
    )
    p_check.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="parse files on an N-process pool (default 1: sequential, deterministic)",
    )
    p_check.add_argument(
        "--stats",
        action="store_true",
        help="append a per-rule wall-time table to the text report",
    )

    p_graph = sub.add_parser(
        "graph", help="dump the project call graph / unit table (repro.devtools)"
    )
    p_graph.add_argument(
        "--format", choices=("json", "dot"), default="json", help="call-graph format"
    )
    p_graph.add_argument(
        "--root",
        default=None,
        help="directory containing the 'repro' package (default: the installed tree)",
    )
    p_graph.add_argument(
        "--units",
        action="store_true",
        help="dump the declared physical-unit table instead of the call graph",
    )
    p_graph.add_argument(
        "--include-external",
        action="store_true",
        help="include external (stdlib/numpy) call sites in the JSON dump",
    )
    p_graph.add_argument(
        "--dtypes",
        action="store_true",
        help="dump inferred dtype/shape facts (returns, params, hot set, cache feeds)",
    )

    return parser


# ----------------------------------------------------------------------
# Subcommands
# ----------------------------------------------------------------------
def _cmd_specs(args: argparse.Namespace) -> int:
    try:
        arch = get_architecture(args.arch)
    except KeyError:
        print(f"unknown architecture {args.arch!r}; known: {', '.join(list_architectures())}", file=sys.stderr)
        return 2
    from repro.gpusim.dvfs import DVFSConfigSpace

    dvfs = DVFSConfigSpace.for_architecture(arch)
    print(f"{arch.name}")
    print(f"  core frequency range : [{arch.core_freq_min_mhz:.0f}:{arch.core_freq_max_mhz:.0f}] MHz")
    print(f"  default core clock   : {arch.default_core_freq_mhz:.0f} MHz")
    print(f"  DVFS configurations  : {len(dvfs)} usable of {dvfs.num_supported} supported")
    print(f"  memory frequency     : {arch.memory_freq_mhz:.0f} MHz")
    print(f"  memory capacity      : {arch.memory_gib:.0f} GiB")
    print(f"  peak bandwidth       : {arch.peak_memory_bandwidth / 1e9:.0f} GB/s")
    print(f"  TDP                  : {arch.tdp_watts:.0f} W")
    return 0


def _resolve_workloads(spec: str):
    registry = default_registry()
    if spec == "training":
        return registry.training_set()
    if spec == "evaluation":
        return registry.evaluation_set()
    names = [n.strip() for n in spec.split(",") if n.strip()]
    return [registry.get(n) for n in names]


def _load_pipeline(models_dir: str | Path, arch_name: str, seed: int) -> FrequencySelectionPipeline:
    """Fitted pipeline from a 'train' output directory (TDP-normalised)."""
    arch = get_architecture(arch_name)
    device = SimulatedGPU(arch, seed=seed, max_samples_per_run=16)
    models = Path(models_dir)
    power = PowerModel(reference_power_w=arch.tdp_watts)
    power.load(models / "power.npz")
    time_model = TimeModel()
    time_model.load(models / "time.npz")
    obs.annotate(
        model_fingerprints={"power": power.fingerprint(), "time": time_model.fingerprint()}
    )
    return FrequencySelectionPipeline(device, power_model=power, time_model=time_model)


def _cmd_collect(args: argparse.Namespace) -> int:
    device = SimulatedGPU(
        get_architecture(args.arch), seed=args.seed, max_samples_per_run=args.max_samples
    )
    workloads = _resolve_workloads(args.workloads)
    if args.freqs == "all":
        freqs = tuple(device.dvfs.usable_mhz)
    else:
        freqs = tuple(device.dvfs.snap(float(f)) for f in args.freqs.split(","))
    config = LaunchConfig(freqs_mhz=freqs, runs_per_config=args.runs, output_dir=Path(args.out))
    artifacts = Launcher(device).collect(workloads, config)
    print(
        f"collected {len(artifacts)} runs "
        f"({len(workloads)} workloads x {len(freqs)} clocks x {args.runs} runs) -> {args.out}"
    )
    return 0


def _cmd_train(args: argparse.Namespace) -> int:
    arch = get_architecture(args.arch)
    dataset = dataset_from_csv_dir(args.data, per_sample=True)
    print(f"loaded {len(dataset)} sample rows across {len(dataset.workload_names)} workloads")

    power = PowerModel(reference_power_w=arch.tdp_watts, seed=args.seed)
    history = power.fit(dataset, epochs=args.power_epochs)
    print(f"power model: {history.epochs_run} epochs, final val loss {history.best_val_loss:.5f}")

    time_model = TimeModel(seed=args.seed)
    history = time_model.fit(dataset, epochs=args.time_epochs)
    print(f"time model:  {history.epochs_run} epochs, final val loss {history.best_val_loss:.5f}")

    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    power.save(out / "power.npz")
    time_model.save(out / "time.npz")
    obs.annotate(
        model_fingerprints={"power": power.fingerprint(), "time": time_model.fingerprint()}
    )
    print(f"saved models -> {out}")
    return 0


def _cmd_predict(args: argparse.Namespace) -> int:
    arch = get_architecture(args.arch)
    # Models are trained TDP-normalised; the reference is rescaled onto
    # this device's envelope by the pipeline.
    pipeline = _load_pipeline(args.models, args.arch, args.seed)
    workload = default_registry().get(args.workload)
    result = pipeline.run_online(workload, objectives=(EDP, ED2P), threshold=args.threshold)

    print(f"{workload.name} on {arch.name}:")
    print(f"  measured at {arch.default_core_freq_mhz:.0f} MHz: "
          f"{result.measured_power_at_max_w:.0f} W, {result.measured_time_at_max_s:.3f} s")
    print(f"  features: fp_active={result.features.fp_active:.3f} "
          f"dram_active={result.features.dram_active:.3f}")
    for name in ("EDP", "ED2P"):
        sel = result.selection(name)
        print(f"  {name:5s}: {sel.freq_mhz:.0f} MHz  "
              f"energy {100 * sel.energy_saving:+.1f}%  "
              f"time {-100 * sel.perf_degradation:+.1f}%")
    return 0


def _print_service_stats(stats, stream) -> None:
    print(
        f"service[{stats.engine}]: {stats.requests} requests in {stats.batches} batches "
        f"(mean {stats.mean_batch_size:.1f}, max {stats.max_batch_size}); "
        f"cache {stats.cache_hits} hits / {stats.cache_misses} misses "
        f"(hit rate {100 * stats.hit_rate:.0f}%), {stats.curves_computed} curves computed",
        file=stream,
    )
    print(
        f"latency: measure {1e3 * stats.measure_s:.1f} ms, lookup {1e3 * stats.lookup_s:.1f} ms, "
        f"predict {1e3 * stats.predict_s:.1f} ms, select {1e3 * stats.select_s:.1f} ms",
        file=stream,
    )
    if stats.batches:
        per_stage = ", ".join(
            f"{stage} p50 {1e3 * stats.percentile(stage, 50):.2f}/p99 "
            f"{1e3 * stats.percentile(stage, 99):.2f} ms"
            for stage in ("predict", "select")
        )
        print(f"per-flush: {per_stage}", file=stream)


def _cmd_select(args: argparse.Namespace) -> int:
    from repro.serving import SelectionRequest, SelectionService

    if args.batch < 1:
        print("--batch must be >= 1", file=sys.stderr)
        return 2
    try:
        workloads = _resolve_workloads(args.workloads)
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    if args.shards < 1:
        print("--shards must be >= 1", file=sys.stderr)
        return 2
    pipeline = _load_pipeline(args.models, args.arch, args.seed)
    service = SelectionService(
        pipeline,
        threshold=args.threshold,
        max_batch_size=args.batch,
        fused=args.fused,
        shards=args.shards,
        registry=obs.get_registry(),
    )

    print(f"{len(workloads)} applications on {pipeline.device.arch.name}:")
    for start in range(0, len(workloads), args.batch):
        chunk = workloads[start : start + args.batch]
        responses = service.select_many([SelectionRequest.from_workload(w) for w in chunk])
        for response in responses:
            parts = [
                f"{name} {sel.freq_mhz:.0f} MHz (energy {100 * sel.energy_saving:+.1f}%, "
                f"time {-100 * sel.perf_degradation:+.1f}%)"
                for name, sel in response.selections.items()
            ]
            suffix = "  [cached]" if response.from_cache else ""
            print(f"  {response.name:12s} {'  '.join(parts)}{suffix}")
    if args.stats:
        _print_service_stats(service.stats(), sys.stdout)
    return 0


def _parse_serve_line(line: str, registry):
    """One JSONL request -> SelectionRequest (raises ValueError on bad input)."""
    import json

    from repro.core.dataset import FeatureVector
    from repro.serving import SelectionRequest

    payload = json.loads(line)
    if not isinstance(payload, dict):
        raise ValueError("request must be a JSON object")
    if "workload" in payload:
        workload = registry.get(payload["workload"])
        return SelectionRequest.from_workload(workload, size=payload.get("size"))
    try:
        features = FeatureVector(
            float(payload["fp_active"]), float(payload["dram_active"]), 0.0
        )
        time_at_max = float(payload["time_at_max_s"])
    except KeyError as missing:
        raise ValueError(f"request needs 'workload' or fp_active/dram_active/time_at_max_s ({missing} missing)")
    return SelectionRequest.from_features(
        features,
        time_at_max,
        power_at_max_w=float(payload.get("power_at_max_w", 0.0)),
        name=str(payload.get("name", "request")),
    )


def _cmd_serve(args: argparse.Namespace) -> int:
    import json

    from repro.serving import SelectionService

    if args.batch < 1:
        print("--batch must be >= 1", file=sys.stderr)
        return 2
    if args.shards < 1:
        print("--shards must be >= 1", file=sys.stderr)
        return 2
    pipeline = _load_pipeline(args.models, args.arch, args.seed)
    registry = default_registry()
    service = SelectionService(
        pipeline,
        threshold=args.threshold,
        max_batch_size=args.batch,
        fused=args.fused,
        shards=args.shards,
        registry=obs.get_registry(),
    )

    stream = sys.stdin if args.input == "-" else open(args.input, encoding="utf-8")
    served = failed = 0
    try:
        pending: list = []

        def flush() -> None:
            nonlocal served
            if not pending:
                return
            for response in service.select_many(pending):
                print(
                    json.dumps(
                        {
                            "name": response.name,
                            "cached": response.from_cache,
                            "selections": {
                                name: {
                                    "freq_mhz": sel.freq_mhz,
                                    "energy_saving": sel.energy_saving,
                                    "perf_degradation": sel.perf_degradation,
                                }
                                for name, sel in response.selections.items()
                            },
                        }
                    )
                )
                served += 1
            pending.clear()

        for line in stream:
            line = line.strip()
            if not line:
                continue
            try:
                pending.append(_parse_serve_line(line, registry))
            except (ValueError, KeyError) as exc:
                print(json.dumps({"error": str(exc)}))
                failed += 1
                continue
            if len(pending) >= args.batch:
                flush()
        flush()
    finally:
        if stream is not sys.stdin:
            stream.close()
    if args.stats:
        _print_service_stats(service.stats(), sys.stderr)
        print(f"served {served} requests, {failed} invalid", file=sys.stderr)
    return 0 if failed == 0 else 1


def _cmd_fleet(args: argparse.Namespace) -> int:
    import json

    from repro.fleet import FleetSimulator, get_scenario, list_scenarios

    if args.list:
        for scenario in list_scenarios():
            print(
                f"{scenario.name:12s} {scenario.n_nodes:3d} nodes / "
                f"{scenario.n_gpus:3d} GPUs  {scenario.description}"
            )
        return 0
    try:
        scenario = get_scenario(args.scenario)
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    scenario = scenario.scaled(
        rate_factor=args.rate_factor, duration_factor=args.duration_factor
    )
    result = FleetSimulator(scenario, seed=args.seed).run()
    metrics = result.metrics()
    obs.annotate(fleet_metrics=metrics)
    print(f"scenario          {metrics['scenario']} (seed {metrics['seed']})")
    print(f"fleet             {metrics['nodes']} nodes / {metrics['gpus']} GPUs")
    print(f"jobs              {metrics['jobs_completed']}/{metrics['jobs_submitted']} completed")
    print(f"makespan          {metrics['makespan_s']:.1f} s")
    print(f"energy            {metrics['total_energy_j'] / 1e6:.3f} MJ "
          f"(+{metrics['wasted_energy_j'] / 1e3:.1f} kJ wasted)")
    print(f"power             avg {metrics['avg_power_w']:.0f} W / peak {metrics['peak_power_w']:.0f} W")
    print(f"wait              mean {metrics['mean_wait_s']:.2f} s / p95 {metrics['p95_wait_s']:.2f} s")
    print(f"SLA               {metrics['deadline_met']}/{metrics['deadline_jobs']} deadlines met "
          f"({metrics['deadline_met_fraction']:.1%})")
    print(f"selections        {metrics['selections_total']} "
          f"(cache hit rate {metrics['selection_cache_hit_rate']:.1%})")
    print(f"disruptions       {metrics['outages_injected']} outages, "
          f"{metrics['requeues']} requeues, {metrics['deferrals']} deferrals, "
          f"{metrics['capped_jobs']} capped")
    if args.out:
        target = Path(args.out)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(json.dumps(metrics, indent=2, sort_keys=True) + "\n")
        print(f"metrics written to {target}")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    import importlib

    from repro.experiments import ExperimentContext, ExperimentSettings

    settings = ExperimentSettings.fast(args.seed) if args.fast else ExperimentSettings.paper(args.seed)
    ctx = ExperimentContext(settings)

    if args.name == "tab1":
        from repro.experiments.tab1 import render_tab1, run_tab1

        print(render_tab1(run_tab1()))
        return 0

    module = importlib.import_module(f"repro.experiments.{args.name}")
    run = getattr(module, f"run_{args.name}")
    render = getattr(module, f"render_{args.name}")
    print(render(run(ctx)))
    return 0


def _cmd_obs(args: argparse.Namespace) -> int:
    import json

    if args.obs_command == "summarize":
        trace_path = Path(args.trace_file)
        if not trace_path.exists():
            print(f"no such trace file: {trace_path}", file=sys.stderr)
            return 2
        summary = obs.summarize_file(trace_path)
        if args.format == "json":
            print(json.dumps(summary, indent=2, sort_keys=True))
        else:
            print(obs.render_summary(summary, top=args.top))
        return 0
    if args.obs_command == "analyze":
        trace_path = Path(args.trace_file)
        if not trace_path.exists():
            print(f"no such trace file: {trace_path}", file=sys.stderr)
            return 2
        forest = obs.forest_from_file(trace_path)
        if args.diff is not None:
            other = Path(args.diff)
            if not other.exists():
                print(f"no such trace file: {other}", file=sys.stderr)
                return 2
            rows = obs.diff_attribution(forest, obs.forest_from_file(other))
            print(obs.render_diff(rows, fmt=args.format, top=args.top))
        else:
            print(obs.render_attribution(forest, top=args.top))
            if args.critical_path:
                print()
                print(obs.render_critical_path(forest))
        if args.flamegraph is not None:
            out = obs.write_collapsed(forest, args.flamegraph)
            stacks = sum(1 for line in out.read_text().splitlines() if line)
            print(f"flamegraph: {stacks} collapsed stacks -> {out}", file=sys.stderr)
        return 0
    # export
    registry = obs.get_registry()
    if args.format == "json":
        print(registry.to_json())
    else:
        print(registry.to_prometheus_text(), end="")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.obs.report import (
        collect_rows,
        default_root,
        evaluate_gate,
        load_bench_payloads,
        record_rows,
        render_report,
    )
    from repro.obs.store import RunStore

    if not 0.0 <= args.tolerance < 1.0:
        print("--tolerance must be in [0, 1)", file=sys.stderr)
        return 2
    root = Path(args.root) if args.root is not None else default_root()
    try:
        payloads = load_bench_payloads(root)
        rows = collect_rows(payloads)
    except ValueError as exc:
        print(f"report: {exc}", file=sys.stderr)
        return 2
    if not rows:
        print(f"report: no BENCH_*.json files under {root}", file=sys.stderr)
        return 2

    store = RunStore(args.store) if args.store is not None else None
    if args.record:
        if store is None:
            print("--record needs --store", file=sys.stderr)
            return 2
        record_rows(payloads, store)

    failures = evaluate_gate(rows, tolerance=args.tolerance, store=store)
    print(
        render_report(
            rows, failures, fmt=args.format, tolerance=args.tolerance, store=store
        )
    )
    if args.gate and failures:
        for failure in failures:
            print(f"bench gate: {failure.message}", file=sys.stderr)
        return 2
    obs.annotate(report_metrics=len(rows), report_regressions=len(failures))
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    from repro.devtools import (
        Baseline,
        all_rules,
        default_baseline_path,
        render_github,
        render_stats,
        render_text,
        rule_ids,
        run_check,
    )

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.rule_id} [{rule.severity}] {rule.summary}")
        return 0

    selected = None
    if args.rules is not None:
        selected = [r.strip().upper() for r in args.rules.split(",") if r.strip()]
        unknown = sorted(set(selected) - set(rule_ids()))
        if unknown:
            print(
                f"unknown rule ids: {', '.join(unknown)}; known: {', '.join(rule_ids())}",
                file=sys.stderr,
            )
            return 2

    root = Path(args.root) if args.root is not None else None
    baseline_path = (
        Path(args.baseline) if args.baseline is not None else default_baseline_path(root)
    )
    if args.baseline is not None and not baseline_path.exists():
        print(f"no such baseline file: {baseline_path}", file=sys.stderr)
        return 2
    baseline = Baseline() if args.no_baseline else Baseline.load(baseline_path)

    if args.jobs < 1:
        print(f"--jobs must be >= 1, got {args.jobs}", file=sys.stderr)
        return 2
    try:
        report = run_check(root, rules=selected, baseline=baseline, jobs=args.jobs)
    except FileNotFoundError as exc:
        print(str(exc), file=sys.stderr)
        return 2

    if args.update_baseline:
        updated = Baseline.from_findings(
            report.all_current,
            justification="recorded by --update-baseline; replace with a real justification",
        )
        updated.save(baseline_path)
        print(f"baseline: {len(updated.entries)} entries -> {baseline_path}")
        return 0

    if args.format == "json":
        print(report.to_json())
    elif args.format == "github":
        print(render_github(report, baseline=baseline))
    else:
        print(render_text(report))
        if args.stats:
            print()
            print(render_stats(report))
    return 0 if report.ok else 1


def _cmd_graph(args: argparse.Namespace) -> int:
    import json

    from repro.devtools import default_root, index_from_root
    from repro.devtools.numeric import dtype_table
    from repro.devtools.units import unit_table

    root = Path(args.root) if args.root is not None else default_root()
    try:
        contexts, index, skipped = index_from_root(root)
    except FileNotFoundError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    for path, exc in skipped:
        print(f"skipped unparseable {path}: {exc}", file=sys.stderr)
    if args.units:
        print(json.dumps(unit_table(index), indent=2))
        return 0
    if args.dtypes:
        print(json.dumps(dtype_table(index), indent=2))
        return 0
    graph = index.call_graph()
    if args.format == "dot":
        print(graph.to_dot())
    else:
        print(json.dumps(graph.to_dict(include_external=args.include_external), indent=2))
    return 0


_DISPATCH = {
    "specs": _cmd_specs,
    "collect": _cmd_collect,
    "train": _cmd_train,
    "predict": _cmd_predict,
    "select": _cmd_select,
    "serve": _cmd_serve,
    "fleet": _cmd_fleet,
    "experiment": _cmd_experiment,
    "obs": _cmd_obs,
    "report": _cmd_report,
    "check": _cmd_check,
    "graph": _cmd_graph,
}

#: Subcommands whose ``--out`` directory gets a run manifest automatically.
_MANIFEST_COMMANDS = {"collect": "out", "train": "out"}


def _manifest_config(args: argparse.Namespace) -> dict:
    """The invocation's full argument set, minus dispatch plumbing."""
    return {
        key: str(value) if isinstance(value, Path) else value
        for key, value in vars(args).items()
        if key not in ("command", "obs_command")
    }


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code.

    Every invocation runs inside a manifest context (commands annotate
    it with e.g. model fingerprints); ``--trace`` installs the global
    tracer for the duration of the command.
    """
    args = build_parser().parse_args(argv)
    run = obs.start_run(
        args.command,
        list(argv) if argv is not None else sys.argv[1:],
        config=_manifest_config(args),
    )
    run.annotate(seed=getattr(args, "seed", None), trace_path=args.trace)
    if args.trace:
        obs.configure(args.trace)
    try:
        code = _DISPATCH[args.command](args)
    finally:
        if args.trace:
            obs.disable()
    targets = []
    if args.manifest:
        targets.append(Path(args.manifest))
    out_attr = _MANIFEST_COMMANDS.get(args.command)
    if out_attr is not None and code == 0:
        targets.append(Path(getattr(args, out_attr)))
    if targets:
        manifest = run.finish(exit_code=code, registry=obs.get_registry())
        for target in targets:
            obs.write_manifest(manifest, target)
    return code


if __name__ == "__main__":  # pragma: no cover - exercised via tests on main()
    raise SystemExit(main())
