"""Event-driven FIFO scheduler.

Jobs are placed in arrival order onto the earliest-free GPU; each job's
execution time and energy come from the simulated board at the clock the
policy assigns.  Since PR 7 the mechanics live in
:class:`~repro.cluster.engine.ClusterEngine`; this class is the simple
no-failures, no-capping front end that the experiments and tests use.
Placement order, per-board RNG stream consumption and the resulting
records are identical to the historical upfront-greedy implementation.
"""

from __future__ import annotations

from repro.cluster.engine import ClusterEngine
from repro.cluster.job import Job, JobRecord
from repro.cluster.node import GPUNode
from repro.cluster.policy import ClockPolicy

__all__ = ["FIFOScheduler"]


class FIFOScheduler:
    """First-in-first-out placement over a set of multi-GPU nodes."""

    def __init__(self, nodes: list[GPUNode], policy: ClockPolicy) -> None:
        self.engine = ClusterEngine(nodes, policy)
        self.nodes = nodes
        self.policy = policy

    def run(self, jobs: list[Job]) -> list[JobRecord]:
        """Schedule all jobs; returns completion records in finish order."""
        return self.engine.run(jobs).records
