"""Figure 5: impact of input size on fp_active / dram_active.

Runs DGEMM and STREAM at the maximum clock across a geometric ladder of
input sizes.  Expected shape: both activity features are essentially
flat in input size (they are intensive properties of the kernel), which
is the second half of the paper's invariance argument.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.context import ExperimentContext
from repro.experiments.fig4 import relative_spread
from repro.experiments.report import render_series

__all__ = ["ActivityVsSize", "Fig5Result", "run_fig5", "render_fig5", "DGEMM_SIZES", "STREAM_SIZES"]

#: Matrix dimensions swept for DGEMM (paper tested "different input sizes").
DGEMM_SIZES: tuple[int, ...] = (1024, 2048, 4096, 8192, 16384)
#: Element counts swept for STREAM (64 MiB to 1 GiB per array).
STREAM_SIZES: tuple[int, ...] = (8_388_608, 16_777_216, 33_554_432, 67_108_864, 134_217_728)


@dataclass(frozen=True)
class ActivityVsSize:
    """Activity features measured at f_max for each input size."""

    workload: str
    sizes: np.ndarray
    fp_active: np.ndarray
    dram_active: np.ndarray


@dataclass(frozen=True)
class Fig5Result:
    """Both micro-benchmarks' activity-vs-size curves."""

    dgemm: ActivityVsSize
    stream: ActivityVsSize


def _size_sweep(ctx: ExperimentContext, name: str, sizes: tuple[int, ...]) -> ActivityVsSize:
    device = ctx.device("GA100")
    workload = ctx.registry.get(name)
    fmax = device.arch.default_core_freq_mhz
    fp = np.empty(len(sizes))
    dram = np.empty(len(sizes))
    for i, size in enumerate(sizes):
        metrics = device.run_at(workload.census(size), fmax, workload_name=name).metrics()
        fp[i] = metrics["fp64_active"] + metrics["fp32_active"]
        dram[i] = metrics["dram_active"]
    return ActivityVsSize(workload=name, sizes=np.asarray(sizes, dtype=float), fp_active=fp, dram_active=dram)


def run_fig5(ctx: ExperimentContext) -> Fig5Result:
    """Measure activity-vs-input-size for both micro-benchmarks."""
    return Fig5Result(
        dgemm=_size_sweep(ctx, "dgemm", DGEMM_SIZES),
        stream=_size_sweep(ctx, "stream", STREAM_SIZES),
    )


def render_fig5(result: Fig5Result) -> str:
    """Series plus the invariance spreads."""
    lines = ["Figure 5 - impact of input size on fp_active and dram_active (at f_max)"]
    for sweep in (result.dgemm, result.stream):
        lines.append(render_series(f"{sweep.workload} fp_active", sweep.sizes, sweep.fp_active, every=1))
        lines.append(render_series(f"{sweep.workload} dram_active", sweep.sizes, sweep.dram_active, every=1))
        lines.append(
            f"{sweep.workload}: fp spread {100 * relative_spread(sweep.fp_active):.1f}%, "
            f"dram spread {100 * relative_spread(sweep.dram_active):.1f}%"
        )
    return "\n".join(lines)
