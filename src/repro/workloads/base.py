"""Workload abstraction shared by micro-benchmarks, SPEC ACCEL, real apps."""

from __future__ import annotations

import enum
from abc import ABC, abstractmethod

import numpy as np

from repro.gpusim.kernel import KernelCensus

__all__ = ["WorkloadCategory", "Workload"]


class WorkloadCategory(enum.Enum):
    """Paper Table 2 grouping."""

    MICROBENCH = "micro-benchmark"
    SPEC_ACCEL = "spec-accel"
    REAL_APP = "real-application"


class Workload(ABC):
    """One benchmark/application with a size-parameterised census.

    Subclasses define:

    * :attr:`name` / :attr:`category`,
    * :attr:`default_size` — the size used when none is given (the paper
      runs training workloads at their standard sizes),
    * :meth:`census` — the op/byte accounting for a given size.

    ``size`` is a single scalar "problem scale" whose meaning is workload
    specific (matrix dimension, element count, node count, ...), documented
    per subclass.
    """

    name: str = "abstract"
    category: WorkloadCategory = WorkloadCategory.MICROBENCH
    default_size: int = 1
    #: Inclusive bounds on meaningful sizes for this workload.
    min_size: int = 1
    max_size: int = 2**62

    @abstractmethod
    def census(self, size: int | None = None) -> KernelCensus:
        """Op/byte accounting for one execution at ``size``."""

    def resolve_size(self, size: int | None) -> int:
        """Validate and default the size parameter."""
        n = self.default_size if size is None else int(size)
        if not self.min_size <= n <= self.max_size:
            raise ValueError(
                f"{self.name}: size {n} outside supported range [{self.min_size}, {self.max_size}]"
            )
        return n

    # ------------------------------------------------------------------
    # Optional runnable reference kernel
    # ------------------------------------------------------------------
    @property
    def has_reference_kernel(self) -> bool:
        """Whether :meth:`run_reference` is implemented."""
        return type(self).run_reference is not Workload.run_reference

    def run_reference(self, size: int, rng: np.random.Generator) -> dict[str, float]:
        """Execute a small NumPy version of the kernel.

        Returns a dict with at least ``checksum`` (a reduction over the
        output, for regression testing) and, when countable, ``flops`` and
        ``bytes_touched`` to validate the census arithmetic.
        """
        raise NotImplementedError(f"{self.name} has no runnable reference kernel")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} name={self.name!r} category={self.category.value}>"
