"""Cluster-layer tests: nodes, policies, scheduling, accounting."""

import numpy as np
import pytest

from repro.cluster import (
    DefaultClockPolicy,
    FIFOScheduler,
    GPUNode,
    Job,
    ModelDrivenPolicy,
    StaticClockPolicy,
    summarize,
)
from repro.cluster.job import JobRecord
from repro.cluster.policy import ServiceDrivenPolicy
from repro.cluster.metrics import power_series
from repro.gpusim import GA100
from repro.workloads import get_workload


def _synthetic_record(*, start: float, end: float, energy: float) -> JobRecord:
    duration = end - start
    return JobRecord(
        job_id=0,
        workload="synthetic",
        node_id=0,
        gpu_index=0,
        clock_mhz=1410.0,
        arrival_s=start,
        start_s=start,
        end_s=end,
        energy_j=energy,
        mean_power_w=energy / duration if duration > 0 else 0.0,
    )


@pytest.fixture()
def nodes():
    return [GPUNode(i, GA100, gpus_per_node=2, seed=1) for i in range(2)]


@pytest.fixture()
def jobs():
    stream = get_workload("stream")
    dgemm = get_workload("dgemm")
    return [
        Job(0, dgemm, arrival_s=0.0),
        Job(1, stream, arrival_s=0.0),
        Job(2, dgemm, arrival_s=0.5),
        Job(3, stream, arrival_s=1.0),
        Job(4, dgemm, arrival_s=1.0),
        Job(5, stream, arrival_s=2.0),
    ]


class TestNode:
    def test_gpu_count(self, nodes):
        assert len(nodes[0]) == 2

    def test_bounds_checked(self, nodes):
        with pytest.raises(IndexError, match="has 2 GPUs"):
            nodes[0].gpu(2)

    def test_boards_have_distinct_streams(self, nodes):
        census = get_workload("stream").census()
        a = nodes[0].gpu(0).run(census).exec_time_s
        b = nodes[0].gpu(1).run(census).exec_time_s
        assert a != b

    def test_idle_power(self, nodes):
        assert nodes[0].idle_power_w == pytest.approx(2 * 50.0)

    def test_validation(self):
        with pytest.raises(ValueError, match="gpus_per_node"):
            GPUNode(0, GA100, gpus_per_node=0)
        with pytest.raises(ValueError, match="node_id"):
            GPUNode(-1, GA100)


class TestPolicies:
    def test_default_policy_is_boost(self, nodes, jobs):
        policy = DefaultClockPolicy()
        assert policy.clock_for(jobs[0], nodes[0].gpu(0)) == 1410.0

    def test_static_policy_snaps(self, nodes, jobs):
        policy = StaticClockPolicy(1001.0)
        assert policy.clock_for(jobs[0], nodes[0].gpu(0)) == 1005.0

    def test_static_policy_validation(self):
        with pytest.raises(ValueError, match="clock_mhz"):
            StaticClockPolicy(0.0)

    def test_model_policy_requires_fitted_pipeline(self):
        from repro.core import FrequencySelectionPipeline
        from repro.gpusim import SimulatedGPU

        pipe = FrequencySelectionPipeline(SimulatedGPU(GA100, seed=0))
        with pytest.raises(ValueError, match="fitted"):
            ModelDrivenPolicy(pipe)

    def test_model_policy_memoises_per_workload(self, fast_ctx, nodes, jobs):
        policy = ModelDrivenPolicy(fast_ctx.pipeline("GA100"))
        device = nodes[0].gpu(0)
        c1 = policy.clock_for(jobs[0], device)
        c2 = policy.clock_for(jobs[2], device)  # same workload (dgemm)
        assert c1 == c2
        assert set(policy.decisions) == {"dgemm"}
        policy.clock_for(jobs[1], device)
        assert set(policy.decisions) == {"dgemm", "stream"}

    def test_model_policy_below_boost(self, fast_ctx, nodes, jobs):
        policy = ModelDrivenPolicy(fast_ctx.pipeline("GA100"))
        clock = policy.clock_for(jobs[0], nodes[0].gpu(0))
        assert clock < 1410.0


class TestServicePolicy:
    """ServiceDrivenPolicy must reproduce ModelDrivenPolicy exactly.

    The serving layer changes *how* decisions are computed (one batched
    flush in ``prepare``), never *what* is decided — so two schedulers
    over identically-seeded nodes and pipelines must emit identical
    JobRecords.
    """

    @pytest.fixture()
    def service_setup(self, tiny_models):
        from repro.serving import SelectionService

        from tests.golden.tiny_pipeline import make_tiny_pipeline

        pipe_a = make_tiny_pipeline(tiny_models, device_seed=11)
        pipe_b = make_tiny_pipeline(tiny_models, device_seed=11)
        return ModelDrivenPolicy(pipe_a), ServiceDrivenPolicy(SelectionService(pipe_b))

    def test_records_match_model_driven(self, service_setup, jobs):
        model_policy, service_policy = service_setup
        nodes_a = [GPUNode(i, GA100, gpus_per_node=2, seed=1) for i in range(2)]
        nodes_b = [GPUNode(i, GA100, gpus_per_node=2, seed=1) for i in range(2)]
        records_a = FIFOScheduler(nodes_a, model_policy).run(jobs)
        records_b = FIFOScheduler(nodes_b, service_policy).run(jobs)
        assert records_a == records_b
        assert service_policy.decisions == model_policy.decisions

    def test_prepare_batches_distinct_apps_in_one_flush(self, service_setup, jobs):
        _, service_policy = service_setup
        nodes = [GPUNode(i, GA100, gpus_per_node=2, seed=1) for i in range(2)]
        FIFOScheduler(nodes, service_policy).run(jobs)
        stats = service_policy.service.stats()
        # Two distinct applications in the stream → one flush of two.
        assert stats.batches == 1
        assert stats.requests == 2
        assert set(service_policy.decisions) == {"dgemm", "stream"}

    def test_unseen_app_falls_back_to_single_flush(self, service_setup, nodes, jobs):
        _, service_policy = service_setup
        device = nodes[0].gpu(0)
        clock = service_policy.clock_for(Job(9, get_workload("lstm"), arrival_s=0.0), device)
        assert clock in nodes[0].gpu(0).dvfs.usable_mhz
        assert "lstm" in service_policy.decisions
        assert service_policy.service.stats().requests == 1


class TestScheduler:
    def test_all_jobs_complete(self, nodes, jobs):
        records = FIFOScheduler(nodes, DefaultClockPolicy()).run(jobs)
        assert {r.job_id for r in records} == {j.job_id for j in jobs}

    def test_no_gpu_overlap(self, nodes, jobs):
        records = FIFOScheduler(nodes, DefaultClockPolicy()).run(jobs * 3 if False else jobs)
        by_gpu: dict[tuple[int, int], list] = {}
        for r in records:
            by_gpu.setdefault((r.node_id, r.gpu_index), []).append(r)
        for runs in by_gpu.values():
            runs.sort(key=lambda r: r.start_s)
            for a, b in zip(runs, runs[1:]):
                assert b.start_s >= a.end_s - 1e-9

    def test_jobs_start_after_arrival(self, nodes, jobs):
        records = FIFOScheduler(nodes, DefaultClockPolicy()).run(jobs)
        for r in records:
            assert r.start_s >= r.arrival_s - 1e-12
            assert r.wait_s >= 0.0

    def test_empty_job_list(self, nodes):
        assert FIFOScheduler(nodes, DefaultClockPolicy()).run([]) == []

    def test_needs_nodes(self):
        with pytest.raises(ValueError, match="at least one node"):
            FIFOScheduler([], DefaultClockPolicy())

    def test_device_clock_restored_after_each_job(self, nodes, jobs):
        FIFOScheduler(nodes, StaticClockPolicy(600.0)).run(jobs)
        for node in nodes:
            for gpu in node.gpus:
                assert gpu.current_sm_clock == 1410.0

    def test_low_clock_policy_uses_less_power(self, nodes, jobs):
        fast = FIFOScheduler(nodes, DefaultClockPolicy()).run(jobs)
        capped = FIFOScheduler(nodes, StaticClockPolicy(800.0)).run(jobs)
        assert all(c.mean_power_w < f.mean_power_w for c, f in
                   zip(sorted(capped, key=lambda r: r.job_id), sorted(fast, key=lambda r: r.job_id)))


class TestMetrics:
    def test_summary_fields(self, nodes, jobs):
        records = FIFOScheduler(nodes, DefaultClockPolicy()).run(jobs)
        report = summarize("default", records)
        assert report.n_jobs == len(jobs)
        assert report.makespan_s == pytest.approx(max(r.end_s for r in records))
        assert report.total_energy_j == pytest.approx(sum(r.energy_j for r in records))
        assert report.peak_power_w > 0

    def test_power_series_conserves_energy(self, nodes, jobs):
        records = FIFOScheduler(nodes, DefaultClockPolicy()).run(jobs)
        t, p = power_series(records, resolution_s=0.05)
        integral = float(np.sum(p) * 0.05)
        assert integral == pytest.approx(sum(r.energy_j for r in records), rel=0.15)

    def test_comparisons(self, nodes, jobs):
        base = summarize("default", FIFOScheduler(nodes, DefaultClockPolicy()).run(jobs))
        capped = summarize("capped", FIFOScheduler(nodes, StaticClockPolicy(900.0)).run(jobs))
        assert capped.energy_saving_vs(base) > 0.0
        assert capped.makespan_change_vs(base) > 0.0  # slower

    def test_empty_power_series(self):
        t, p = power_series([])
        assert t.size == 0 and p.size == 0

    def test_zero_duration_job_deposits_energy_impulse(self):
        record = _synthetic_record(start=2.3, end=2.3, energy=50.0)
        t, p = power_series([record], resolution_s=1.0)
        assert float(np.sum(p) * 1.0) == pytest.approx(50.0, rel=0.0, abs=0.0)
        assert p[2] == pytest.approx(50.0)  # bin [2, 3) holds the impulse

    def test_job_straddling_resolution_boundary(self):
        # 1.5 s of work split 0.75/0.75 across the bins [0,1) and [1,2).
        record = _synthetic_record(start=0.25, end=1.75, energy=150.0)
        t, p = power_series([record], resolution_s=1.0)
        assert p[0] == pytest.approx(75.0)
        assert p[1] == pytest.approx(75.0)
        assert float(np.sum(p)) == pytest.approx(150.0, rel=1e-12)

    def test_straddling_jobs_conserve_energy_exactly(self):
        records = [
            _synthetic_record(start=0.1, end=0.9, energy=10.0),
            _synthetic_record(start=0.5, end=3.25, energy=33.0),
            _synthetic_record(start=2.0, end=2.0, energy=5.0),
        ]
        t, p = power_series(records, resolution_s=0.5)
        assert float(np.sum(p) * 0.5) == pytest.approx(48.0, rel=1e-12)

    def test_empty_records_summarise_to_zero(self):
        report = summarize("x", [])
        assert report.n_jobs == 0
        assert report.makespan_s == 0.0
        assert report.total_energy_j == 0.0
        assert report.peak_power_w == 0.0

    def test_power_series_exact_with_fine_resolution(self, nodes, jobs):
        records = FIFOScheduler(nodes, DefaultClockPolicy()).run(jobs)
        t, p = power_series(records, resolution_s=0.05)
        integral = float(np.sum(p) * 0.05)
        assert integral == pytest.approx(sum(r.energy_j for r in records), rel=1e-9)
