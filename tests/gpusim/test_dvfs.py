"""DVFS config-space tests, including the paper's exact config counts."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpusim import GA100, GV100, DVFSConfigSpace

GA100_SPACE = DVFSConfigSpace.for_architecture(GA100)
GV100_SPACE = DVFSConfigSpace.for_architecture(GV100)


class TestPaperConfigCounts:
    """Table 1: '61 out of 80' (we model 81 states) and '117 out of 167'."""

    def test_ga100_usable_count_is_61(self):
        assert len(GA100_SPACE) == 61

    def test_ga100_supported_count(self):
        assert GA100_SPACE.num_supported == 81

    def test_gv100_usable_count_is_117(self):
        assert len(GV100_SPACE) == 117

    def test_gv100_supported_count_is_167(self):
        assert GV100_SPACE.num_supported == 167

    def test_ga100_usable_floor(self):
        assert GA100_SPACE.min_usable_mhz == 510.0

    def test_ga100_top_is_1410(self):
        assert GA100_SPACE.max_mhz == 1410.0

    def test_gv100_top_is_1380(self):
        assert GV100_SPACE.max_mhz == 1380.0


class TestGridStructure:
    def test_grid_ascending_and_uniform(self):
        arr = np.asarray(GA100_SPACE.supported_mhz)
        steps = np.diff(arr)
        assert np.all(steps > 0)
        assert np.allclose(steps, 15.0)

    def test_usable_subset_of_supported(self):
        assert set(GA100_SPACE.usable_mhz) <= set(GA100_SPACE.supported_mhz)

    def test_usable_array_dtype(self):
        arr = GA100_SPACE.usable_array()
        assert arr.dtype == np.float64
        assert arr.size == 61

    def test_normalized_top_is_one(self):
        assert GA100_SPACE.normalized(1410.0) == pytest.approx(1.0)

    def test_index_of_known_clock(self):
        assert GA100_SPACE.index_of(510.0) == 0
        assert GA100_SPACE.index_of(1410.0) == 60

    def test_index_of_unknown_clock_raises(self):
        with pytest.raises(ValueError, match="usable clock"):
            GA100_SPACE.index_of(511.0)


class TestSnap:
    def test_snap_exact_value_unchanged(self):
        assert GA100_SPACE.snap(750.0) == 750.0

    def test_snap_rounds_to_nearest(self):
        assert GA100_SPACE.snap(752.0) == 750.0
        assert GA100_SPACE.snap(758.0) == 765.0

    def test_snap_tie_resolves_upward(self):
        # 757.5 is equidistant between 750 and 765.
        assert GA100_SPACE.snap(757.5) == 765.0

    def test_snap_clamps_below_range(self):
        assert GA100_SPACE.snap(1.0) == 210.0

    def test_snap_clamps_above_range(self):
        assert GA100_SPACE.snap(99999.0) == 1410.0

    def test_is_supported(self):
        assert GA100_SPACE.is_supported(210.0)
        assert not GA100_SPACE.is_supported(211.0)

    @given(freq=st.floats(min_value=1.0, max_value=5000.0, allow_nan=False))
    @settings(max_examples=200, deadline=None)
    def test_snap_always_returns_supported_state(self, freq):
        snapped = GA100_SPACE.snap(freq)
        assert GA100_SPACE.is_supported(snapped)

    @given(freq=st.floats(min_value=1.0, max_value=5000.0, allow_nan=False))
    @settings(max_examples=100, deadline=None)
    def test_snap_is_idempotent(self, freq):
        once = GA100_SPACE.snap(freq)
        assert GA100_SPACE.snap(once) == once

    @given(freq=st.floats(min_value=210.0, max_value=1410.0, allow_nan=False))
    @settings(max_examples=100, deadline=None)
    def test_snap_error_bounded_by_half_step(self, freq):
        snapped = GA100_SPACE.snap(freq)
        assert abs(snapped - freq) <= 7.5 + 1e-9
