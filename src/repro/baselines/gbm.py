"""Gradient-boosted regression trees (the paper's XGBR baseline).

XGBoost-style boosting for squared error: with gradient ``g = pred - y``
and unit hessian, the optimal regularised leaf weight is
``-sum(g) / (n_leaf + lambda)``.  Each round fits a shallow CART to the
residuals and the leaf means are shrunk by the L2 ``reg_lambda`` factor
before being added at the learning rate — the two XGBoost ingredients
(shrinkage + leaf regularisation) that matter at this problem size.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.tree import DecisionTreeRegressor

__all__ = ["GradientBoostingRegressor"]


class GradientBoostingRegressor:
    """Shrinkage boosting of depth-limited CARTs with L2 leaf weights."""

    def __init__(
        self,
        n_estimators: int = 200,
        *,
        learning_rate: float = 0.1,
        max_depth: int = 4,
        min_samples_leaf: int = 3,
        subsample: float = 1.0,
        reg_lambda: float = 1.0,
        seed: int | None = None,
    ) -> None:
        if n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        if not 0.0 < learning_rate <= 1.0:
            raise ValueError("learning_rate must be in (0, 1]")
        if not 0.0 < subsample <= 1.0:
            raise ValueError("subsample must be in (0, 1]")
        if reg_lambda < 0.0:
            raise ValueError("reg_lambda must be non-negative")
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.subsample = subsample
        self.reg_lambda = reg_lambda
        self.seed = seed
        self.base_prediction_: float = 0.0
        self.trees_: list[DecisionTreeRegressor] = []
        self._leaf_shrink: list[dict[int, float]] = []

    def fit(self, x: np.ndarray, y: np.ndarray) -> "GradientBoostingRegressor":
        """Boost against squared error; returns self."""
        x = np.atleast_2d(np.asarray(x, dtype=float))
        y = np.asarray(y, dtype=float).reshape(-1)
        if x.shape[0] != y.size:
            raise ValueError(f"X has {x.shape[0]} rows but y has {y.size}")
        rng = np.random.default_rng(self.seed)
        self.base_prediction_ = float(y.mean())
        pred = np.full(y.shape, self.base_prediction_)
        self.trees_ = []
        n = x.shape[0]
        for _ in range(self.n_estimators):
            residual = y - pred
            if self.subsample < 1.0:
                take = rng.random(n) < self.subsample
                if take.sum() < 2:
                    take = np.ones(n, dtype=bool)
            else:
                take = np.ones(n, dtype=bool)
            tree = DecisionTreeRegressor(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                rng=np.random.default_rng(rng.integers(2**63)),
            )
            tree.fit(x[take], residual[take])
            self._apply_leaf_regularisation(tree, x[take], residual[take])
            pred += self.learning_rate * tree.predict(x)
            self.trees_.append(tree)
        return self

    def _apply_leaf_regularisation(
        self, tree: DecisionTreeRegressor, x: np.ndarray, residual: np.ndarray
    ) -> None:
        """Replace leaf means with XGBoost leaf weights sum(r)/(n + lambda)."""
        if self.reg_lambda == 0.0:  # repro: noqa[NUM001] — 0.0 exactly disables regularisation (config contract)
            return
        # Locate every training sample's leaf, then recompute leaf values.
        feature = np.asarray(tree._feature)
        threshold = np.asarray(tree._threshold)
        left = np.asarray(tree._left)
        right = np.asarray(tree._right)
        nodes = np.zeros(x.shape[0], dtype=int)
        active = feature[nodes] != -1
        while np.any(active):
            cur = nodes[active]
            go_left = x[active, feature[cur]] <= threshold[cur]
            nodes[active] = np.where(go_left, left[cur], right[cur])
            active = feature[nodes] != -1
        for leaf in np.unique(nodes):
            members = nodes == leaf
            count = int(members.sum())
            tree._value[leaf] = float(residual[members].sum() / (count + self.reg_lambda))

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Staged-sum prediction."""
        if not self.trees_:
            raise RuntimeError("predict called before fit")
        x = np.atleast_2d(np.asarray(x, dtype=float))
        out = np.full(x.shape[0], self.base_prediction_)
        for tree in self.trees_:
            out += self.learning_rate * tree.predict(x)
        return out

    def staged_predict(self, x: np.ndarray) -> np.ndarray:
        """Predictions after each boosting round, shape (rounds, samples)."""
        if not self.trees_:
            raise RuntimeError("staged_predict called before fit")
        x = np.atleast_2d(np.asarray(x, dtype=float))
        out = np.full(x.shape[0], self.base_prediction_)
        stages = np.empty((len(self.trees_), x.shape[0]))
        for i, tree in enumerate(self.trees_):
            out = out + self.learning_rate * tree.predict(x)
            stages[i] = out
        return stages
