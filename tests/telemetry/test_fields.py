"""Field-registry tests."""

import pytest

from repro.telemetry import FIELDS, field_by_id, field_by_name


class TestRegistry:
    def test_twelve_fields(self):
        """Paper Section 4.1 collects exactly 12 metrics."""
        assert len(FIELDS) == 12

    def test_paper_names_present(self):
        names = {f.name for f in FIELDS}
        assert names == {
            "fp64_active", "fp32_active", "sm_app_clock", "dram_active",
            "gr_engine_active", "gpu_utilization", "power_usage", "sm_active",
            "sm_occupancy", "pcie_tx_bytes", "pcie_rx_bytes", "exec_time",
        }

    def test_field_ids_unique(self):
        ids = [f.field_id for f in FIELDS]
        assert len(ids) == len(set(ids))

    def test_dcgm_profiling_ids(self):
        """Profiling metrics use real DCGM field-id numbering."""
        assert field_by_name("fp64_active").field_id == 1006
        assert field_by_name("dram_active").field_id == 1005
        assert field_by_name("gr_engine_active").field_id == 1001
        assert field_by_name("power_usage").field_id == 155
        assert field_by_name("sm_app_clock").field_id == 100

    def test_cumulative_flags(self):
        assert field_by_name("pcie_tx_bytes").cumulative
        assert field_by_name("pcie_rx_bytes").cumulative
        assert not field_by_name("power_usage").cumulative

    def test_lookup_by_id_roundtrip(self):
        for f in FIELDS:
            assert field_by_id(f.field_id) is f

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError, match="known"):
            field_by_name("nope")

    def test_unknown_id_raises(self):
        with pytest.raises(KeyError, match="known"):
            field_by_id(424242)

    def test_units_present(self):
        for f in FIELDS:
            assert f.unit
            assert f.description
