"""Units-of-measure inference over the project call graph.

The physical chain the paper rests on — power (W) x time (s) ->
energy (J), EDP (J·s), ED²P (J·s²), clocks in MHz — flows through
``gpusim -> core -> serving`` as plain floats and ndarrays.  This pass
gives those values dimensions and propagates them through assignments,
arithmetic and call edges, so a silent ``energy = power * clock`` is a
static error (UNIT002) and ``freq_mhz + power_w`` never compiles past
the gate (UNIT001).

Units are **dimension vectors** over the base dimensions ``Hz``, ``W``
and ``s`` (scale prefixes like the M in MHz are irrelevant to
dimensional consistency).  A unit is seeded three ways, in priority
order:

1. an explicit entry in :data:`RETURN_UNITS` (the declaration table);
2. a :mod:`repro.units` ``Annotated`` alias on a parameter, return or
   dataclass field (``-> Watts``, ``power_w: WattsArray``);
3. the naming conventions in :data:`SUFFIX_UNITS`/:data:`EXACT_UNITS`
   (``*_mhz``, ``*_w``, ``power``, ``energy_j``, ``edp``, ``ed2p``, …).

Inference is deliberately conservative: an expression whose unit cannot
be proven stays *unknown* and produces no finding.  Dimensionless
constants multiply/compare freely (``1.0 - t_max / time`` is fine).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from repro.devtools.context import ModuleContext
from repro.devtools.graph import ProjectIndex

__all__ = [
    "DIMENSIONLESS",
    "Dims",
    "UnitFinding",
    "analyze_module",
    "dims_of_name",
    "format_dims",
    "function_return_dims",
    "unit_table",
]

# ----------------------------------------------------------------------
# Dimension algebra
# ----------------------------------------------------------------------
#: A unit as a sorted tuple of (base dimension, exponent) pairs.
Dims = tuple  # tuple[tuple[str, int], ...]

DIMENSIONLESS: Dims = ()
HZ: Dims = (("Hz", 1),)
W: Dims = (("W", 1),)
S: Dims = (("s", 1),)
J: Dims = (("W", 1), ("s", 1))
EDP_DIMS: Dims = (("W", 1), ("s", 2))
ED2P_DIMS: Dims = (("W", 1), ("s", 3))


def mul_dims(a: Dims, b: Dims) -> Dims:
    out: dict[str, int] = dict(a)
    for dim, exp in b:
        out[dim] = out.get(dim, 0) + exp
    return tuple(sorted((d, e) for d, e in out.items() if e != 0))


def div_dims(a: Dims, b: Dims) -> Dims:
    return mul_dims(a, tuple((d, -e) for d, e in b))


def pow_dims(a: Dims, n: int) -> Dims:
    return tuple(sorted((d, e * n) for d, e in a)) if n != 0 else DIMENSIONLESS


#: Pretty names for the dimension vectors the project actually uses.
_NAMED: dict[Dims, str] = {
    DIMENSIONLESS: "1",
    HZ: "MHz",
    W: "W",
    S: "s",
    J: "J",
    EDP_DIMS: "J*s (EDP)",
    ED2P_DIMS: "J*s^2 (ED2P)",
}


def format_dims(dims: Dims) -> str:
    """Human name of a dimension vector (``J``, ``MHz*W``, ``s^-1`` …)."""
    if dims in _NAMED:
        return _NAMED[dims]
    parts = []
    for dim, exp in dims:
        label = "MHz" if dim == "Hz" else dim
        parts.append(label if exp == 1 else f"{label}^{exp}")
    return "*".join(parts) if parts else "1"


#: Spelled unit name (used by :class:`repro.units.UnitTag` strings and
#: the declaration table) -> dimension vector.
NAMED_DIMS: dict[str, Dims] = {
    "MHz": HZ,
    "Hz": HZ,
    "W": W,
    "s": S,
    "J": J,
    "J*s": EDP_DIMS,
    "J*s^2": ED2P_DIMS,
    "1": DIMENSIONLESS,
}

#: ``repro.units`` alias name -> dimension vector.
ALIAS_UNITS: dict[str, Dims] = {
    "MHz": HZ,
    "MHzArray": HZ,
    "Watts": W,
    "WattsArray": W,
    "Seconds": S,
    "SecondsArray": S,
    "Joules": J,
    "JoulesArray": J,
    "EDPScore": EDP_DIMS,
    "EDPArray": EDP_DIMS,
    "ED2PScore": ED2P_DIMS,
    "ED2PArray": ED2P_DIMS,
    "Fraction": DIMENSIONLESS,
    "FractionArray": DIMENSIONLESS,
}

#: Name-suffix conventions (the token after the last underscore).
SUFFIX_UNITS: dict[str, Dims] = {
    "mhz": HZ,
    "hz": HZ,
    "w": W,
    "watts": W,
    "s": S,
    "ms": S,
    "sec": S,
    "seconds": S,
    "j": J,
    "joules": J,
    "fraction": DIMENSIONLESS,
    "ratio": DIMENSIONLESS,
}

#: Whole-name conventions.
EXACT_UNITS: dict[str, Dims] = {
    "power": W,
    "energy": J,
    "edp": EDP_DIMS,
    "ed2p": ED2P_DIMS,
}

#: Declaration table for qualified functions whose signatures cannot (or
#: should not) carry a :mod:`repro.units` annotation.  Extend here when a
#: producer lives outside the annotated set.
RETURN_UNITS: dict[str, Dims] = {
    "repro.core.energy.energy_from_power_time": J,
}

#: External calls that return their first argument's unit unchanged.
_PASSTHROUGH_CALLS = frozenset(
    {
        "numpy.asarray",
        "numpy.array",
        "numpy.ascontiguousarray",
        "numpy.atleast_1d",
        "numpy.atleast_2d",
        "numpy.abs",
        "numpy.absolute",
        "numpy.clip",
        "numpy.diff",
        "numpy.sort",
        "numpy.copy",
        "numpy.minimum",
        "numpy.maximum",
        "numpy.float64",
        "numpy.sum",
        "numpy.mean",
        "numpy.median",
        "numpy.min",
        "numpy.max",
        "numpy.amin",
        "numpy.amax",
        "numpy.interp",
        "numpy.full",
        "numpy.full_like",
        "builtins.float",
        "builtins.abs",
        "builtins.max",
        "builtins.min",
        "builtins.sum",
        "builtins.sorted",
    }
)

#: Method names that preserve the receiver's unit.
_PASSTHROUGH_METHODS = frozenset(
    {"sum", "mean", "min", "max", "copy", "reshape", "astype", "ravel",
     "flatten", "item", "squeeze", "clip", "round", "tolist", "take"}
)


def dims_of_name(name: str) -> Dims | None:
    """Unit declared by a variable/parameter/attribute *name*, if any.

    Single-token names never match a suffix (a bare loop index ``j`` is
    not joules); only ``EXACT_UNITS`` covers whole names.
    """
    lowered = name.lower()
    if lowered in EXACT_UNITS:
        return EXACT_UNITS[lowered]
    tokens = lowered.split("_")
    tokens = [t for t in tokens if t]  # leading-underscore names
    if len(tokens) >= 2 and tokens[-1] in SUFFIX_UNITS:
        return SUFFIX_UNITS[tokens[-1]]
    return None


# ----------------------------------------------------------------------
# Annotation reading
# ----------------------------------------------------------------------
def annotation_dims(ann: ast.expr | None, ctx: ModuleContext) -> Dims | None:
    """Dimension vector declared by an annotation expression, if any."""
    if ann is None:
        return None
    if isinstance(ann, ast.Constant) and isinstance(ann.value, str):
        try:
            return annotation_dims(ast.parse(ann.value, mode="eval").body, ctx)
        except SyntaxError:
            return None
    if isinstance(ann, (ast.Name, ast.Attribute)):
        dotted = ctx.resolve(ann)
        if dotted is not None and dotted.startswith("repro.units."):
            return ALIAS_UNITS.get(dotted.rsplit(".", 1)[1])
        return None
    if isinstance(ann, ast.BinOp) and isinstance(ann.op, ast.BitOr):
        return annotation_dims(ann.left, ctx) or annotation_dims(ann.right, ctx)
    if isinstance(ann, ast.Subscript):
        dotted = ctx.resolve(ann.value) or ""
        if dotted.endswith("Annotated") and isinstance(ann.slice, ast.Tuple):
            for extra in ann.slice.elts[1:]:
                if (
                    isinstance(extra, ast.Call)
                    and isinstance(extra.args[0] if extra.args else None, ast.Constant)
                    and (ctx.resolve(extra.func) or "").endswith("UnitTag")
                ):
                    return NAMED_DIMS.get(str(extra.args[0].value))
        if dotted.endswith("Optional"):
            return annotation_dims(ann.slice, ctx)
        return None
    return None


def function_return_dims(fn, ctx: ModuleContext) -> Dims | None:
    """Declared return unit of an indexed function (table > annotation > name)."""
    if fn.qualname in RETURN_UNITS:
        return RETURN_UNITS[fn.qualname]
    dims = annotation_dims(fn.returns, ctx)
    if dims is not None:
        return dims
    return dims_of_name(fn.name)


def _param_dims(fn, ctx: ModuleContext) -> dict[str, Dims]:
    """Declared units of one function's parameters."""
    out: dict[str, Dims] = {}
    args = fn.node.args
    for a in (*args.posonlyargs, *args.args, *args.kwonlyargs):
        dims = annotation_dims(a.annotation, ctx)
        if dims is None:
            dims = dims_of_name(a.arg)
        if dims is not None:
            out[a.arg] = dims
    return out


# ----------------------------------------------------------------------
# Per-module inference
# ----------------------------------------------------------------------
@dataclass
class UnitFinding:
    """One unit violation found by the inference pass."""

    rule: str  # "UNIT001" or "UNIT002"
    node: ast.AST
    message: str


class _FunctionUnits:
    """In-order inference over one function body."""

    def __init__(self, fn, ctx: ModuleContext, index: ProjectIndex) -> None:
        self.fn = fn
        self.ctx = ctx
        self.index = index
        self.findings: list[UnitFinding] = []
        #: Inferred units of local names (seeded from parameter declarations).
        self.env: dict[str, Dims] = dict(_param_dims(fn, ctx))
        #: Type scope for receiver/call resolution (mirrors the call graph).
        self.tscope = index._scope_for(fn, ctx)
        self.return_dims = function_return_dims(fn, ctx)

    # -- lookup ---------------------------------------------------------
    def _name_dims(self, name: str) -> Dims | None:
        if name in self.env:
            return self.env[name]
        return dims_of_name(name)

    # -- inference ------------------------------------------------------
    def infer(self, expr: ast.expr) -> Dims | None:
        if isinstance(expr, ast.Constant):
            return DIMENSIONLESS if isinstance(expr.value, (int, float)) else None
        if isinstance(expr, ast.Name):
            return self._name_dims(expr.id)
        if isinstance(expr, ast.Attribute):
            return self._attribute_dims(expr)
        if isinstance(expr, ast.Subscript):
            return self.infer(expr.value)
        if isinstance(expr, ast.UnaryOp):
            return self.infer(expr.operand)
        if isinstance(expr, ast.BinOp):
            return self._binop_dims(expr)
        if isinstance(expr, ast.Compare):
            self._check_compare(expr)
            return None
        if isinstance(expr, ast.Call):
            return self._call_dims(expr)
        if isinstance(expr, ast.IfExp):
            body = self.infer(expr.body)
            orelse = self.infer(expr.orelse)
            return body if body is not None and body == orelse else None
        return None

    def _attribute_dims(self, expr: ast.Attribute) -> Dims | None:
        # A typed receiver can expose an annotated property/field unit.
        btype = self.index.value_type(expr.value, self.tscope, self.ctx)
        if btype is not None and btype[0] == "class":
            prop = self.index.lookup_method(btype[1], expr.attr)
            if prop is not None and prop.is_property:
                owner_ctx = self.index.modules.get(prop.module, self.ctx)
                dims = function_return_dims(prop, owner_ctx)
                if dims is not None:
                    return dims
            cinfo = self.index.classes.get(btype[1])
            if cinfo is not None and expr.attr in cinfo.attr_annotations:
                owner_ctx = self.index.modules.get(cinfo.module, self.ctx)
                dims = annotation_dims(cinfo.attr_annotations[expr.attr], owner_ctx)
                if dims is not None:
                    return dims
        return dims_of_name(expr.attr)

    def _binop_dims(self, expr: ast.BinOp) -> Dims | None:
        left = self.infer(expr.left)
        right = self.infer(expr.right)
        if isinstance(expr.op, ast.Mult):
            if left is None or right is None:
                return None
            return mul_dims(left, right)
        if isinstance(expr.op, ast.Div):
            if left is None or right is None:
                return None
            return div_dims(left, right)
        if isinstance(expr.op, ast.Pow):
            if (
                left is not None
                and isinstance(expr.right, ast.Constant)
                and isinstance(expr.right.value, int)
            ):
                return pow_dims(left, expr.right.value)
            return None
        if isinstance(expr.op, (ast.Add, ast.Sub)):
            if (
                left is not None
                and right is not None
                and left != right
                and left != DIMENSIONLESS
                and right != DIMENSIONLESS
            ):
                op = "+" if isinstance(expr.op, ast.Add) else "-"
                self.findings.append(
                    UnitFinding(
                        "UNIT001",
                        expr,
                        f"incompatible units in '{op}': {format_dims(left)} vs "
                        f"{format_dims(right)}",
                    )
                )
                return None
            if left is not None and right is not None and left == right:
                return left
            return None
        return None

    def _check_compare(self, expr: ast.Compare) -> None:
        operands = [expr.left, *expr.comparators]
        for op, lhs, rhs in zip(expr.ops, operands, operands[1:]):
            if not isinstance(op, (ast.Lt, ast.LtE, ast.Gt, ast.GtE, ast.Eq, ast.NotEq)):
                continue
            left = self.infer(lhs)
            right = self.infer(rhs)
            if (
                left is not None
                and right is not None
                and left != right
                and left != DIMENSIONLESS
                and right != DIMENSIONLESS
            ):
                self.findings.append(
                    UnitFinding(
                        "UNIT001",
                        expr,
                        f"comparison between incompatible units: {format_dims(left)} vs "
                        f"{format_dims(right)}",
                    )
                )
                return

    def _call_dims(self, expr: ast.Call) -> Dims | None:
        site = self.index.classify_call(
            expr, self.tscope, self.ctx, caller=self.fn.qualname
        )
        if site.kind == "resolved" and site.target is not None:
            callee = self.index.functions.get(site.target)
            if callee is not None and callee.name != "__init__":
                owner_ctx = self.index.modules.get(callee.module, self.ctx)
                return function_return_dims(callee, owner_ctx)
            return None
        if site.kind == "external" and site.target is not None:
            if site.target in _PASSTHROUGH_CALLS and expr.args:
                return self.infer(expr.args[0])
            if (
                isinstance(expr.func, ast.Attribute)
                and expr.func.attr in _PASSTHROUGH_METHODS
            ):
                return self.infer(expr.func.value)
        return None

    # -- statement walk -------------------------------------------------
    def run(self) -> list[UnitFinding]:
        for stmt in self.fn.node.body:
            self._stmt(stmt)
        return self.findings

    def _unwrap(self, expr: ast.expr) -> ast.expr:
        """Peel passthrough wrappers (``float(...)``, ``np.asarray(...)``)."""
        while True:
            if isinstance(expr, ast.UnaryOp):
                expr = expr.operand
                continue
            if isinstance(expr, ast.Call) and expr.args:
                site_name = None
                if isinstance(expr.func, ast.Name):
                    if expr.func.id in ("float", "abs") and "float" not in self.ctx.imports:
                        site_name = expr.func.id
                dotted = self.ctx.resolve(expr.func)
                if dotted in _PASSTHROUGH_CALLS or site_name is not None:
                    expr = expr.args[0]
                    continue
            return expr

    def _check_derived_assignment(
        self, target_name: str, declared: Dims | None, value: ast.expr, node: ast.AST
    ) -> None:
        """UNIT002: mul/div result bound to a name with a different declared unit."""
        if declared is None:
            return
        core = self._unwrap(value)
        if not (isinstance(core, ast.BinOp) and isinstance(core.op, (ast.Mult, ast.Div, ast.Pow))):
            return
        derived = self.infer(core)
        if derived is None or derived == declared:
            return
        self.findings.append(
            UnitFinding(
                "UNIT002",
                node,
                f"multiply/divide produces {format_dims(derived)} but "
                f"{target_name!r} is declared {format_dims(declared)}",
            )
        )

    def _stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return
        if isinstance(stmt, ast.Assign):
            value_dims = self.infer(stmt.value)  # also surfaces UNIT001 inside
            typ = self.index.value_type(stmt.value, self.tscope, self.ctx)
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    declared = dims_of_name(target.id)
                    self._check_derived_assignment(target.id, declared, stmt.value, stmt)
                    if value_dims is not None:
                        self.env[target.id] = value_dims
                    elif declared is not None:
                        self.env[target.id] = declared
                    else:
                        self.env.pop(target.id, None)
                    if typ is not None:
                        self.tscope[target.id] = typ
                elif isinstance(target, ast.Attribute):
                    declared = dims_of_name(target.attr)
                    self._check_derived_assignment(target.attr, declared, stmt.value, stmt)
            return
        if isinstance(stmt, ast.AnnAssign):
            if stmt.value is None:
                return
            value_dims = self.infer(stmt.value)
            if isinstance(stmt.target, ast.Name):
                declared = annotation_dims(stmt.annotation, self.ctx)
                if declared is None:
                    declared = dims_of_name(stmt.target.id)
                self._check_derived_assignment(stmt.target.id, declared, stmt.value, stmt)
                if declared is not None:
                    self.env[stmt.target.id] = declared
                elif value_dims is not None:
                    self.env[stmt.target.id] = value_dims
            return
        if isinstance(stmt, ast.AugAssign):
            self.infer(stmt.value)
            if isinstance(stmt.op, (ast.Mult, ast.Div)) and isinstance(stmt.target, ast.Name):
                target_dims = self._name_dims(stmt.target.id)
                value_dims = self.infer(stmt.value)
                if target_dims is not None and value_dims not in (None, DIMENSIONLESS):
                    combine = mul_dims if isinstance(stmt.op, ast.Mult) else div_dims
                    derived = combine(target_dims, value_dims)
                    declared = dims_of_name(stmt.target.id)
                    if declared is not None and derived != declared:
                        self.findings.append(
                            UnitFinding(
                                "UNIT002",
                                stmt,
                                f"augmented multiply/divide produces {format_dims(derived)} "
                                f"but {stmt.target.id!r} is declared {format_dims(declared)}",
                            )
                        )
            return
        if isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self.infer(stmt.value)
                if self.return_dims is not None:
                    self._check_derived_assignment(
                        f"return of {self.fn.name}()", self.return_dims, stmt.value, stmt
                    )
            return
        # Generic traversal: infer every expression child (surfacing
        # UNIT001 in conditions, calls, subscripts), recurse into blocks.
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.stmt):
                self._stmt(child)
            elif isinstance(child, ast.expr):
                self.infer(child)
            elif isinstance(child, (ast.withitem, ast.excepthandler)):
                for sub in ast.iter_child_nodes(child):
                    if isinstance(sub, ast.stmt):
                        self._stmt(sub)
                    elif isinstance(sub, ast.expr):
                        self.infer(sub)


def analyze_module(ctx: ModuleContext, index: ProjectIndex) -> list[UnitFinding]:
    """All unit findings for one module (both rules; cached per context)."""
    cached = getattr(ctx, "_unit_findings", None)
    if cached is not None:
        return cached
    findings: list[UnitFinding] = []
    for fn in index.functions.values():
        if fn.module != ctx.module:
            continue
        findings.extend(_FunctionUnits(fn, ctx, index).run())
    ctx._unit_findings = findings  # type: ignore[attr-defined]
    return findings


# ----------------------------------------------------------------------
# Unit table (for ``repro graph --units``)
# ----------------------------------------------------------------------
def unit_table(index: ProjectIndex) -> dict:
    """Declared units across the project, JSON-ready."""
    functions: dict[str, str] = {}
    parameters: dict[str, dict[str, str]] = {}
    for qualname, fn in sorted(index.functions.items()):
        ctx = index.modules.get(fn.module)
        if ctx is None:
            continue
        ret = function_return_dims(fn, ctx)
        if ret is not None:
            functions[qualname] = format_dims(ret)
        params = {name: format_dims(d) for name, d in _param_dims(fn, ctx).items()}
        if params:
            parameters[qualname] = params
    return {
        "schema": 1,
        "conventions": {
            "suffixes": {k: format_dims(v) for k, v in sorted(SUFFIX_UNITS.items())},
            "exact": {k: format_dims(v) for k, v in sorted(EXACT_UNITS.items())},
        },
        "aliases": {k: format_dims(v) for k, v in sorted(ALIAS_UNITS.items())},
        "declaration_table": {k: format_dims(v) for k, v in sorted(RETURN_UNITS.items())},
        "functions": functions,
        "parameters": parameters,
    }
