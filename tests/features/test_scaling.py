"""Scaler tests: roundtrips, constant columns, fit-before-use guards."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.features import MinMaxScaler, StandardScaler


@pytest.mark.parametrize("scaler_cls", [StandardScaler, MinMaxScaler])
class TestCommonContract:
    def test_roundtrip(self, scaler_cls, rng):
        x = rng.standard_normal((50, 4)) * 10 + 3
        s = scaler_cls()
        assert np.allclose(s.inverse_transform(s.fit_transform(x)), x)

    def test_transform_before_fit_raises(self, scaler_cls):
        with pytest.raises(RuntimeError, match="fit"):
            scaler_cls().transform(np.zeros((2, 2)))

    def test_inverse_before_fit_raises(self, scaler_cls):
        with pytest.raises(RuntimeError, match="fit"):
            scaler_cls().inverse_transform(np.zeros((2, 2)))

    def test_constant_column_no_nan(self, scaler_cls):
        x = np.column_stack([np.full(10, 7.0), np.arange(10.0)])
        out = scaler_cls().fit_transform(x)
        assert np.all(np.isfinite(out))

    def test_fit_returns_self(self, scaler_cls):
        s = scaler_cls()
        assert s.fit(np.zeros((3, 2))) is s


class TestStandardScaler:
    def test_zero_mean_unit_std(self, rng):
        x = rng.standard_normal((200, 3)) * 5 + 2
        out = StandardScaler().fit_transform(x)
        assert np.allclose(out.mean(axis=0), 0.0, atol=1e-12)
        assert np.allclose(out.std(axis=0), 1.0, atol=1e-12)

    def test_transform_new_data_uses_fit_stats(self, rng):
        train = rng.standard_normal((100, 2))
        s = StandardScaler().fit(train)
        new = np.array([[100.0, 100.0]])
        out = s.transform(new)
        expected = (100.0 - train.mean(axis=0)) / train.std(axis=0)
        assert np.allclose(out[0], expected)


class TestMinMaxScaler:
    def test_unit_interval(self, rng):
        x = rng.uniform(-50, 50, size=(100, 3))
        out = MinMaxScaler().fit_transform(x)
        assert out.min() == pytest.approx(0.0)
        assert out.max() == pytest.approx(1.0)

    def test_out_of_range_extrapolates(self):
        s = MinMaxScaler().fit(np.array([[0.0], [10.0]]))
        assert s.transform(np.array([[20.0]]))[0, 0] == pytest.approx(2.0)


@given(
    x=hnp.arrays(
        dtype=np.float64,
        shape=st.tuples(st.integers(2, 30), st.integers(1, 5)),
        elements=st.floats(-1e6, 1e6, allow_nan=False),
    )
)
@settings(max_examples=50, deadline=None)
def test_standard_roundtrip_property(x):
    s = StandardScaler()
    assert np.allclose(s.inverse_transform(s.fit_transform(x)), x, atol=1e-6 * (1 + np.abs(x).max()))
