"""Observability rule: library code reports through ``repro.obs``.

PR 3 gave every layer a single reporting surface — spans, counters,
histograms, manifests — with a measured near-zero disabled path.  Bare
``print()`` in library code bypasses it (corrupting JSONL output modes
like ``repro serve``), and ad-hoc ``time.perf_counter()`` arithmetic in
a module with no route to the obs layer produces timings nobody can
export, aggregate, or assert on.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.devtools.context import ModuleContext
from repro.devtools.findings import Finding
from repro.devtools.rules.base import Rule, register

__all__ = ["OBS001AdHocReporting"]

#: Non-library surfaces: the CLI prints by design, experiments render
#: figures/tables, obs implements the timing itself, devtools is the
#: checker's own plumbing.
_EXEMPT_PACKAGES = ("repro.cli", "repro.experiments", "repro.obs", "repro.devtools")

_TIMING_CALLS = frozenset(
    {"time.perf_counter", "time.perf_counter_ns", "time.monotonic", "time.monotonic_ns"}
)


@register
class OBS001AdHocReporting(Rule):
    """No bare print()/ad-hoc wall timing in library code."""

    rule_id = "OBS001"
    severity = "warning"
    summary = "print()/ad-hoc perf_counter timing in library code instead of repro.obs"
    rationale = (
        "Library output must flow through repro.obs so it shows up in traces, "
        "the metrics registry and run manifests — and so machine-readable CLI "
        "modes (repro serve JSONL) never get stray stdout lines. Timing calls "
        "are fine when the module publishes them through obs instruments; a "
        "module that times work without importing repro.obs is keeping private "
        "wall-clock state nobody can export."
    )

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        if not ctx.in_package("repro") or ctx.in_package(*_EXEMPT_PACKAGES):
            return []
        uses_obs = ctx.imports_module("repro.obs") or ctx.imports.get("obs") == "repro.obs"
        findings: list[Finding] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            if (
                isinstance(node.func, ast.Name)
                and node.func.id == "print"
                and "print" not in ctx.imports
            ):
                findings.append(
                    self.finding(
                        ctx,
                        node,
                        "print() in library code — return values or publish through "
                        "repro.obs (spans/metrics) instead",
                    )
                )
                continue
            if not uses_obs and ctx.resolve(node.func) in _TIMING_CALLS:
                findings.append(
                    self.finding(
                        ctx,
                        node,
                        "ad-hoc wall timing in a module that never touches repro.obs — "
                        "wrap the work in obs.span()/a registry histogram instead",
                    )
                )
        return findings
