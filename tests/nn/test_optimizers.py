"""Optimizer tests: each must minimise a quadratic; state handling."""

import numpy as np
import pytest

from repro.nn import SGD, AdaDelta, Adam, Adamax, Nadam, RMSprop, get_optimizer

# (optimizer, steps) — AdaDelta's unit-correction makes it famously slow
# on low-dimensional quadratics, so it gets a larger budget.
ALL_OPTS = [
    (SGD(0.05), 300),
    (SGD(0.02, momentum=0.9), 300),
    (RMSprop(0.01), 2000),
    (Adam(0.05), 300),
    (Adamax(0.05), 300),
    (Nadam(0.05), 300),
    (AdaDelta(1.0), 3000),
]


def minimise_quadratic(opt, steps=300):
    """Minimise f(x) = (x - 3)^2 from x = 0."""
    x = np.array([0.0])
    for _ in range(steps):
        opt.begin_step()
        grad = 2.0 * (x - 3.0)
        opt.update((0, "x"), x, grad)
    return x[0]


@pytest.mark.parametrize("opt,steps", ALL_OPTS, ids=lambda o: getattr(o, "name", ""))
class TestConvergence:
    def test_minimises_quadratic(self, opt, steps):
        opt.reset()
        assert minimise_quadratic(opt, steps) == pytest.approx(3.0, abs=0.15)

    def test_update_is_in_place(self, opt, steps):
        opt.reset()
        x = np.array([1.0])
        ref = x
        opt.begin_step()
        opt.update((0, "p"), x, np.array([0.5]))
        assert ref is x  # same array object mutated

    def test_reset_clears_state(self, opt, steps):
        opt.reset()
        x = np.array([0.0])
        opt.begin_step()
        opt.update((0, "p"), x, np.array([1.0]))
        opt.reset()
        assert opt._slots == {}
        assert opt._step == 0


class TestParameterIsolation:
    def test_slots_keyed_per_parameter(self):
        opt = Adam(0.1)
        a, b = np.array([0.0]), np.array([0.0])
        opt.begin_step()
        opt.update((0, "a"), a, np.array([1.0]))
        opt.update((1, "b"), b, np.array([-1.0]))
        assert (0, "a") in opt._slots and (1, "b") in opt._slots
        assert a[0] < 0 < b[0]


class TestSpecificBehaviour:
    def test_sgd_plain_step(self):
        opt = SGD(0.1)
        x = np.array([1.0])
        opt.update((0, "x"), x, np.array([2.0]))
        assert x[0] == pytest.approx(0.8)

    def test_momentum_accelerates(self):
        plain = SGD(0.01)
        mom = SGD(0.01, momentum=0.9)
        x1 = np.array([0.0])
        x2 = np.array([0.0])
        for _ in range(10):
            plain.update((0, "x"), x1, 2.0 * (x1 - 3.0))
            mom.update((0, "x"), x2, 2.0 * (x2 - 3.0))
        assert abs(x2[0] - 3.0) < abs(x1[0] - 3.0)

    def test_rmsprop_normalises_gradient_scale(self):
        """RMSprop step size is insensitive to gradient magnitude."""
        small, large = RMSprop(0.01), RMSprop(0.01)
        xs, xl = np.array([0.0]), np.array([0.0])
        small.update((0, "x"), xs, np.array([1e-3]))
        large.update((0, "x"), xl, np.array([1e3]))
        assert xs[0] == pytest.approx(xl[0], rel=1e-3)

    def test_adam_bias_correction_first_step(self):
        """First Adam step is ~learning_rate regardless of gradient size."""
        opt = Adam(0.1)
        x = np.array([0.0])
        opt.begin_step()
        opt.update((0, "x"), x, np.array([1e-4]))
        assert abs(x[0]) == pytest.approx(0.1, rel=0.01)

    def test_invalid_learning_rate(self):
        with pytest.raises(ValueError, match="learning_rate"):
            SGD(0.0)

    def test_invalid_momentum(self):
        with pytest.raises(ValueError, match="momentum"):
            SGD(0.1, momentum=1.0)

    def test_invalid_rho(self):
        with pytest.raises(ValueError, match="rho"):
            RMSprop(0.01, rho=1.5)

    def test_invalid_betas(self):
        with pytest.raises(ValueError, match="betas"):
            Adam(0.01, beta1=1.0)


class TestRegistry:
    def test_paper_optimizer_sweep_available(self):
        """Paper Section 4.3 sweeps Adam, Adamax, Nadam, RMSprop, AdaDelta."""
        for name in ("adam", "adamax", "nadam", "rmsprop", "adadelta"):
            assert get_optimizer(name).name == name

    def test_kwargs_forwarded(self):
        opt = get_optimizer("rmsprop", learning_rate=0.123)
        assert opt.learning_rate == 0.123

    def test_unknown_raises(self):
        with pytest.raises(KeyError, match="known"):
            get_optimizer("lion")
