"""Table 4: optimal frequencies per app and method."""

import pytest

from repro.experiments.tab4 import render_tab4, run_tab4


@pytest.fixture(scope="module")
def tab4(ctx, suite):
    return run_tab4(ctx, suite=suite)


def test_tab4_report(benchmark, tab4, report):
    benchmark(render_tab4, tab4)
    report("Table 4 - optimal frequencies per method", render_tab4(tab4))


def test_tab4_every_cell_on_grid(tab4):
    for ev in tab4.evaluations:
        for sel in ev.selections.values():
            assert sel.freq_mhz in ev.freqs_mhz


def test_tab4_predicted_close_to_measured(tab4):
    """P-selections land within ~300 MHz of M-selections for most apps
    (the paper's Table 4 shows the same give-or-take)."""
    close = 0
    for ev in tab4.evaluations:
        if abs(ev.selections["P-ED2P"].freq_mhz - ev.selections["M-ED2P"].freq_mhz) <= 300.0:
            close += 1
    assert close >= 4
