"""Per-job clock policies.

A policy maps (job, device) to the SM clock the job should run at.  The
three built-ins cover the operational spectrum:

* :class:`DefaultClockPolicy` — boost clock, the status quo,
* :class:`StaticClockPolicy` — one site-wide cap (the blunt instrument),
* :class:`ModelDrivenPolicy` — the paper's method: per-job ED2P/EDP
  selection from the trained DNNs, with decisions memoised per workload
  (an application's clock is decided once, as a site would).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.core.energy import ED2P, ObjectiveFunction
from repro.core.pipeline import FrequencySelectionPipeline
from repro.cluster.job import Job
from repro.gpusim.device import SimulatedGPU

__all__ = ["ClockPolicy", "DefaultClockPolicy", "StaticClockPolicy", "ModelDrivenPolicy"]


class ClockPolicy(ABC):
    """Chooses the SM clock a job runs at."""

    name: str = "abstract"

    @abstractmethod
    def clock_for(self, job: Job, device: SimulatedGPU) -> float:
        """SM clock (MHz) for ``job`` on ``device``."""


class DefaultClockPolicy(ClockPolicy):
    """Run everything at the boost clock (the no-DVFS baseline)."""

    name = "default-clock"

    def clock_for(self, job: Job, device: SimulatedGPU) -> float:
        return device.arch.default_core_freq_mhz


class StaticClockPolicy(ClockPolicy):
    """One fixed clock for every job (a site-wide static cap)."""

    name = "static-cap"

    def __init__(self, clock_mhz: float) -> None:
        if clock_mhz <= 0:
            raise ValueError("clock_mhz must be positive")
        self.clock_mhz = float(clock_mhz)

    def clock_for(self, job: Job, device: SimulatedGPU) -> float:
        return device.dvfs.snap(self.clock_mhz)


class ModelDrivenPolicy(ClockPolicy):
    """The paper's method as a scheduler policy.

    The first job of each workload triggers one online-phase prediction
    on the pipeline's device; the selected clock is memoised so later
    jobs of the same application reuse it (profiles are per-application,
    not per-job — exactly how a site would deploy this).
    """

    name = "model-driven"

    def __init__(
        self,
        pipeline: FrequencySelectionPipeline,
        *,
        objective: ObjectiveFunction = ED2P,
        threshold: float | None = None,
    ) -> None:
        if not pipeline.is_fitted:
            raise ValueError("pipeline must be fitted before building a policy")
        self.pipeline = pipeline
        self.objective = objective
        self.threshold = threshold
        self._decisions: dict[str, float] = {}

    def clock_for(self, job: Job, device: SimulatedGPU) -> float:
        key = job.workload.name
        if key not in self._decisions:
            result = self.pipeline.run_online(
                job.workload,
                objectives=(self.objective,),
                threshold=self.threshold,
                size=job.size,
            )
            self._decisions[key] = result.selection(self.objective.name).freq_mhz
        return device.dvfs.snap(self._decisions[key])

    @property
    def decisions(self) -> dict[str, float]:
        """Memoised per-application clock decisions (MHz)."""
        return dict(self._decisions)
