"""Shared experiment context: devices, trained pipelines, cached sweeps.

The paper's evaluation reuses one trained model pair everywhere; the
context mirrors that.  The GA100 pipeline is trained on the 21 training
workloads; the GV100 pipeline *reuses the GA100-trained networks* (the
portability experiment) and only re-measures features on the Volta
device.

``ExperimentSettings.fast()`` shrinks runs/sampling so the unit-test
suite exercises every experiment end-to-end in seconds; benchmarks use
the paper-faithful defaults.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.models import PowerModel, TimeModel
from repro.core.pipeline import FrequencySelectionPipeline
from repro.gpusim.arch import get_architecture
from repro.gpusim.device import SimulatedGPU
from repro.workloads.base import Workload
from repro.workloads.registry import default_registry

__all__ = ["ExperimentSettings", "ExperimentContext"]

#: The architecture whose training data parameterises the models.
TRAINING_ARCH = "GA100"


@dataclass(frozen=True)
class ExperimentSettings:
    """Knobs controlling experiment cost vs fidelity."""

    seed: int = 0
    #: Paper: each training workload ran 3 times per configuration.
    runs_per_config: int = 3
    #: Sensor samples kept per run (aggregates are what the models use).
    max_samples_per_run: int = 48
    #: Runs used to measure ground-truth sweeps of the evaluation apps.
    truth_runs_per_config: int = 1

    @classmethod
    def fast(cls, seed: int = 0) -> "ExperimentSettings":
        """Cheap profile for unit tests (single runs, few samples)."""
        return cls(seed=seed, runs_per_config=1, max_samples_per_run=4, truth_runs_per_config=1)

    @classmethod
    def paper(cls, seed: int = 0) -> "ExperimentSettings":
        """Paper-faithful profile used by the benchmark harness."""
        return cls(seed=seed, runs_per_config=3, max_samples_per_run=48, truth_runs_per_config=3)


class ExperimentContext:
    """Caches devices, the trained pipeline, and measured sweeps."""

    def __init__(self, settings: ExperimentSettings | None = None) -> None:
        self.settings = settings if settings is not None else ExperimentSettings()
        self.registry = default_registry()
        self._devices: dict[str, SimulatedGPU] = {}
        self._pipelines: dict[str, FrequencySelectionPipeline] = {}
        self._truth_cache: dict[tuple[str, str], object] = {}

    # ------------------------------------------------------------------
    def device(self, arch_name: str = TRAINING_ARCH) -> SimulatedGPU:
        """The (cached) simulated device for one architecture."""
        key = arch_name.upper()
        if key not in self._devices:
            self._devices[key] = SimulatedGPU(
                get_architecture(key),
                seed=self.settings.seed,
                max_samples_per_run=self.settings.max_samples_per_run,
            )
        return self._devices[key]

    def training_workloads(self) -> list[Workload]:
        """The 21 training workloads (paper Table 2)."""
        return self.registry.training_set()

    def evaluation_workloads(self) -> list[Workload]:
        """The 6 unseen real applications."""
        return self.registry.evaluation_set()

    # ------------------------------------------------------------------
    def pipeline(self, arch_name: str = TRAINING_ARCH) -> FrequencySelectionPipeline:
        """Trained pipeline for one architecture.

        Training happens once, on GA100, with TDP-normalised power; other
        architectures get a pipeline wrapping the *same* trained models —
        the paper's cross-architecture portability setup.
        """
        key = arch_name.upper()
        if key in self._pipelines:
            return self._pipelines[key]

        if TRAINING_ARCH not in self._pipelines:
            device = self.device(TRAINING_ARCH)
            pipe = FrequencySelectionPipeline(
                device,
                power_model=PowerModel(reference_power_w=device.arch.tdp_watts, seed=self.settings.seed),
                time_model=TimeModel(seed=self.settings.seed),
            )
            pipe.fit_offline(self.training_workloads(), runs_per_config=self.settings.runs_per_config)
            self._pipelines[TRAINING_ARCH] = pipe
        if key == TRAINING_ARCH:
            return self._pipelines[TRAINING_ARCH]

        trained = self._pipelines[TRAINING_ARCH]
        ported = FrequencySelectionPipeline(
            self.device(key),
            power_model=trained.power_model,
            time_model=trained.time_model,
        )
        ported.training_dataset = trained.training_dataset
        self._pipelines[key] = ported
        return ported

    # ------------------------------------------------------------------
    def truth_sweep(self, app_name: str, arch_name: str = TRAINING_ARCH):
        """Measured (brute-force) sweep of one evaluation app — cached."""
        key = (app_name.lower(), arch_name.upper())
        if key not in self._truth_cache:
            pipe = self.pipeline(arch_name)
            self._truth_cache[key] = pipe.measure_sweep(
                self.registry.get(app_name),
                runs_per_config=self.settings.truth_runs_per_config,
            )
        return self._truth_cache[key]
