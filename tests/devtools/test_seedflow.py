"""DET003 fixtures: conjured roots (part A) and tainted edges (part B).

Fixtures land in ``repro.gpusim.*`` (one of ``SEEDED_PACKAGES``); the
out-of-scope test uses ``repro.workloads``.  DET003 needs the project
index, so cross-module cases thread ``extra_sources`` through
:func:`repro.devtools.check_source`.
"""

from __future__ import annotations

import textwrap

from repro.devtools import check_source


def _check(source: str, module: str = "repro.gpusim.fixture", **kwargs) -> list:
    return check_source(textwrap.dedent(source), module=module, rules=["DET003"], **kwargs)


# ----------------------------------------------------------------------
# Part A — conjured roots at the definition site
# ----------------------------------------------------------------------
def test_det003_flags_module_level_seeded_rng():
    findings = _check(
        """
        import numpy as np

        RNG = np.random.default_rng(42)
        """
    )
    assert [f.rule_id for f in findings] == ["DET003"]
    assert "module-level RNG construction" in findings[0].message


def test_det003_flags_function_conjuring_seeded_rng():
    findings = _check(
        """
        import numpy as np

        def sample(n):
            rng_local = np.random.default_rng(1234)
            return rng_local.normal(size=n)
        """
    )
    assert [f.rule_id for f in findings] == ["DET003"]
    assert "conjures an RNG root" in findings[0].message


def test_det003_rng_derived_from_seed_parameter_is_clean():
    findings = _check(
        """
        import numpy as np

        def sample(seed, n):
            rng = np.random.default_rng(seed)
            return rng.normal(size=n)
        """
    )
    assert findings == []


def test_det003_taint_flows_through_spawn_comprehension():
    findings = _check(
        """
        import numpy as np

        class Device:
            def __init__(self, seed_seq):
                self._seed_seq = seed_seq

            def spawn_rngs(self, n):
                return [np.random.default_rng(child) for child in self._seed_seq.spawn(n)]
        """
    )
    assert findings == []


def test_det003_none_guarded_fallback_is_clean():
    findings = _check(
        """
        import numpy as np

        def sample(n, seed=None):
            if seed is None:
                return np.random.default_rng(7).normal(size=n)
            return np.random.default_rng(seed).normal(size=n)
        """
    )
    assert findings == []


def test_det003_out_of_scope_package_is_silent():
    findings = _check(
        """
        import numpy as np

        RNG = np.random.default_rng(42)
        """,
        module="repro.workloads.fixture",
    )
    assert findings == []


# ----------------------------------------------------------------------
# Part B — conjured values crossing a resolved call edge
# ----------------------------------------------------------------------
def test_det003_flags_literal_seed_bound_to_seed_parameter():
    findings = _check(
        """
        import numpy as np

        def consume(seed):
            return np.random.default_rng(seed)

        def caller():
            return consume(42)
        """
    )
    assert [f.rule_id for f in findings] == ["DET003"]
    assert "hard-coded seed 42" in findings[0].message
    assert "'seed'" in findings[0].message


def test_det003_caller_derived_seed_crossing_edge_is_clean():
    findings = _check(
        """
        import numpy as np

        def consume(seed):
            return np.random.default_rng(seed)

        def caller(seed):
            return consume(seed + 1)
        """
    )
    assert findings == []


def test_det003_literal_bound_to_non_rng_parameter_is_clean():
    findings = _check(
        """
        def consume(n):
            return list(range(n))

        def caller():
            return consume(42)
        """
    )
    assert findings == []


def test_det003_flags_conjured_factory_crossing_edge():
    findings = _check(
        """
        import numpy as np

        def consume(rng):
            return rng.normal()

        def caller():
            return consume(np.random.default_rng(5))
        """
    )
    messages = [f.message for f in findings]
    # Part A flags the conjured factory itself; part B flags the edge.
    assert any("freshly constructed default_rng(...)" in m for m in messages)
    assert all(f.rule_id == "DET003" for f in findings)


def test_det003_derived_factory_crossing_edge_is_clean():
    findings = _check(
        """
        import numpy as np

        def consume(rng):
            return rng.normal()

        def caller(seed):
            return consume(np.random.default_rng(seed))
        """
    )
    assert findings == []


def test_det003_cross_module_edge_via_extra_sources():
    findings = _check(
        """
        from repro.gpusim.fix_device import make_device

        def build():
            return make_device(seed=1234)
        """,
        extra_sources={
            "repro.gpusim.fix_device": textwrap.dedent(
                """
                import numpy as np

                def make_device(seed):
                    return np.random.default_rng(seed)
                """
            )
        },
    )
    assert [f.rule_id for f in findings] == ["DET003"]
    assert "make_device" in findings[0].message


def test_det003_none_literal_selects_callee_fallback_and_is_clean():
    findings = _check(
        """
        import numpy as np

        def consume(n, seed=None):
            if seed is None:
                return np.random.default_rng(0).normal(size=n)
            return np.random.default_rng(seed).normal(size=n)

        def caller(n):
            return consume(n, seed=None)
        """
    )
    assert findings == []
