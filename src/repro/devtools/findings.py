"""The unit of checker output: one violation at one source location."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Finding", "SEVERITIES"]

#: Allowed severities, strongest first (order matters for text output).
SEVERITIES = ("error", "warning")


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation.

    ``path`` is posix-relative to the scan root (e.g.
    ``"repro/core/selection.py"``), which keeps findings stable across
    checkouts — the baseline file matches on ``(rule_id, path, message)``
    so line drift never invalidates a grandfathered entry.
    """

    path: str
    line: int
    col: int
    rule_id: str
    severity: str
    message: str

    def key(self) -> tuple[str, str, str]:
        """Identity used for baseline matching (line numbers drift)."""
        return (self.rule_id, self.path, self.message)

    def render(self) -> str:
        """One-line human-readable form (editor-clickable location)."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule_id} [{self.severity}] {self.message}"

    def to_dict(self) -> dict:
        """JSON-ready form (schema asserted by tests/devtools)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule_id,
            "severity": self.severity,
            "message": self.message,
        }
