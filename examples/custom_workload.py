"""Extending the framework with your own application.

The paper stresses that its collection framework is transparent — "no
compiling or linking needed" — and that the models generalise to unseen
applications.  This example registers a brand-new workload (a spectral
ocean-circulation model, as a stand-in for *your* code), characterised
only by its op/byte census, and runs it through the already-trained
pipeline.

Run:  python examples/custom_workload.py
"""

from repro.core import FrequencySelectionPipeline
from repro.gpusim import GA100, KernelCensus, SimulatedGPU
from repro.workloads import WorkloadRegistry, training_workloads
from repro.workloads.base import Workload, WorkloadCategory


class OceanSpectral(Workload):
    """Toy spectral ocean model: FFT-heavy with dense tendency updates.

    ``size`` is the number of model timesteps on a 2048^2 spectral grid.
    Per step: two 2-D FFT round-trips (~5 N log2 N each) plus ~40 FLOPs
    of physics per grid point, with ~3 grid sweeps of DRAM traffic.
    """

    name = "ocean-spectral"
    category = WorkloadCategory.REAL_APP
    default_size = 500
    min_size = 10

    _GRID = 2048 * 2048

    def census(self, size: int | None = None) -> KernelCensus:
        steps = float(self.resolve_size(size))
        import numpy as np

        fft_flops = 4.0 * 5.0 * self._GRID * np.log2(self._GRID)
        physics_flops = 40.0 * self._GRID
        return KernelCensus(
            flops_fp64=(fft_flops + physics_flops) * steps,
            dram_bytes=3.0 * 8.0 * self._GRID * steps,
            pcie_rx_bytes=8.0 * self._GRID,
            pcie_tx_bytes=8.0 * self._GRID,
            occupancy=0.80,
            compute_efficiency=0.72,
            memory_efficiency=0.78,
            compute_latency_fraction=0.30,
            serial_fraction=0.05,
        )


def main() -> None:
    device = SimulatedGPU(GA100, seed=11, max_samples_per_run=8)
    pipeline = FrequencySelectionPipeline(device, seed=2)

    print("training on the standard benchmark suite...")
    pipeline.fit_offline(training_workloads(), runs_per_config=1)

    # Register the new application — one class, no recompilation of
    # anything, exactly the transparency property the paper claims.
    registry = WorkloadRegistry()
    registry.register(OceanSpectral())
    ocean = registry.get("ocean-spectral")

    print("\nprofiling the custom app once at the default clock...")
    result = pipeline.run_online(ocean)
    print(f"fp_active={result.features.fp_active:.2f}  "
          f"dram_active={result.features.dram_active:.2f}  "
          f"T(f_max)={result.measured_time_at_max_s:.2f}s  "
          f"P(f_max)={result.measured_power_at_max_w:.0f}W")

    for objective in ("EDP", "ED2P"):
        sel = result.selection(objective)
        print(f"{objective}: run at {sel.freq_mhz:.0f} MHz -> "
              f"{100 * sel.energy_saving:.1f}% energy saved, "
              f"{100 * sel.perf_degradation:.1f}% slower")

    # Validate against brute force (what the method lets you avoid).
    truth = pipeline.measure_sweep(ocean)
    freqs, e_meas = truth.mean_curve("power")
    _, t_meas = truth.mean_curve("time")
    energy = e_meas * t_meas
    import numpy as np

    best = freqs[np.argmin(energy * t_meas)]
    print(f"\nbrute-force EDP optimum (61 measured sweeps): {best:.0f} MHz")
    print(f"model-predicted EDP optimum (1 measured run):  "
          f"{result.selection('EDP').freq_mhz:.0f} MHz")


if __name__ == "__main__":
    main()
