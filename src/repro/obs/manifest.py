"""Run manifests: one structured record per CLI invocation.

A manifest answers "what exactly produced this output directory?" months
later: the command and its full argument set, a stable hash of that
configuration, the seed, the model fingerprints involved, the git state
of the checkout, wall time, and a snapshot of every metric the process
emitted.  ``repro collect`` and ``repro train`` write one alongside
their outputs automatically; any command accepts a global
``--manifest PATH`` to force one.

Commands annotate the manifest through a process-local run context
(:func:`start_run` / :func:`annotate`) instead of threading a handle
through every call — e.g. ``repro train`` attaches the fingerprints of
the models it just saved.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import subprocess
import sys
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path

import numpy as np

from repro.obs.metrics import MetricsRegistry

__all__ = [
    "RunManifest",
    "RunContext",
    "start_run",
    "current_run",
    "annotate",
    "config_hash",
    "git_describe",
    "write_manifest",
]

MANIFEST_FILENAME = "run_manifest.json"


def config_hash(config: dict) -> str:
    """Stable SHA-256 over a canonical JSON encoding of ``config``."""
    canonical = json.dumps(config, sort_keys=True, default=str)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def git_describe(cwd: str | Path | None = None) -> str | None:
    """``git describe --always --dirty`` of the checkout, or None."""
    try:
        out = subprocess.run(
            ["git", "describe", "--always", "--dirty"],
            cwd=str(cwd) if cwd is not None else None,
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    return out.stdout.strip() or None if out.returncode == 0 else None


@dataclass(frozen=True)
class RunManifest:
    """Everything needed to audit one invocation's provenance."""

    schema: int
    command: str
    argv: list[str]
    config: dict
    config_hash: str
    seed: int | None
    git: str | None
    python: str
    numpy: str
    started_unix: float
    wall_time_s: float
    exit_code: int | None
    trace_path: str | None
    model_fingerprints: dict[str, str]
    metrics: dict[str, dict]
    extras: dict = field(default_factory=dict)

    def to_json(self, *, indent: int = 2) -> str:
        return json.dumps(asdict(self), indent=indent, default=str)


class RunContext:
    """Mutable accumulator for one run, finalized into a :class:`RunManifest`."""

    def __init__(self, command: str, argv: list[str], config: dict | None = None) -> None:
        self.command = command
        self.argv = list(argv)
        self.config = dict(config) if config else {}
        self.started_unix = time.time()
        self._t0 = time.perf_counter()
        self.seed: int | None = None
        self.trace_path: str | None = None
        self.model_fingerprints: dict[str, str] = {}
        self.extras: dict = {}

    def annotate(self, **kw) -> None:
        """Attach fields: known names bind directly, the rest land in extras."""
        for key, value in kw.items():
            if key == "model_fingerprints":
                self.model_fingerprints.update(value)
            elif key in ("seed", "trace_path"):
                setattr(self, key, value)
            else:
                self.extras[key] = value

    def finish(
        self,
        *,
        exit_code: int | None = None,
        registry: MetricsRegistry | None = None,
    ) -> RunManifest:
        """Freeze the context into a manifest (metrics snapshotted now)."""
        return RunManifest(
            schema=1,
            command=self.command,
            argv=self.argv,
            config=self.config,
            config_hash=config_hash(self.config),
            seed=self.seed,
            git=git_describe(Path(__file__).parent),
            python=platform.python_version(),
            numpy=np.__version__,
            started_unix=self.started_unix,
            wall_time_s=time.perf_counter() - self._t0,
            exit_code=exit_code,
            trace_path=self.trace_path,
            model_fingerprints=dict(self.model_fingerprints),
            metrics=registry.snapshot() if registry is not None else {},
            extras=dict(self.extras),
        )


#: Process-local current run (set by the CLI entry point).
_CURRENT: RunContext | None = None


def start_run(command: str, argv: list[str], config: dict | None = None) -> RunContext:
    """Open a new run context and make it the process-current one."""
    global _CURRENT
    _CURRENT = RunContext(command, argv, config)
    return _CURRENT


def current_run() -> RunContext | None:
    """The process-current run context, or None outside the CLI."""
    return _CURRENT


def annotate(**kw) -> None:
    """Annotate the current run, if any (no-op outside the CLI)."""
    if _CURRENT is not None:
        _CURRENT.annotate(**kw)


def write_manifest(manifest: RunManifest, target: str | Path) -> Path:
    """Write ``manifest`` to ``target`` (a directory gets the default name).

    The write is atomic: the JSON lands in a same-directory temp file
    first and is moved into place with ``os.replace``, so a crash
    mid-run can never leave a truncated manifest — readers see either
    the previous complete file or the new one.
    """
    target = Path(target)
    path = target / MANIFEST_FILENAME if target.is_dir() else target
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.parent / f".{path.name}.{os.getpid()}.tmp"
    try:
        tmp.write_text(manifest.to_json() + "\n")
        os.replace(tmp, path)
    finally:
        tmp.unlink(missing_ok=True)
    return path
