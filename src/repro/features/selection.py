"""Feature ranking and top-k selection via mutual information.

The paper ranks 10 candidate utilization metrics against the two
predictands (``power_usage``, ``exec_time``) and keeps the top three:
``fp_active``, ``sm_app_clock``, ``dram_active`` (Section 4.2.1, Fig. 3).
Scores here are additionally reported normalised to the strongest feature
so they read like Fig. 3's 0-1 bars.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.features.mutual_info import mutual_information

__all__ = ["FeatureRanking", "rank_features", "select_top_k"]


@dataclass(frozen=True)
class FeatureRanking:
    """MI scores of every candidate feature against one predictand."""

    target_name: str
    feature_names: tuple[str, ...]
    scores: tuple[float, ...]

    def normalized(self) -> tuple[float, ...]:
        """Scores divided by the maximum (Fig. 3 style, in [0, 1])."""
        top = max(self.scores)
        if top <= 0.0:
            return tuple(0.0 for _ in self.scores)
        return tuple(s / top for s in self.scores)

    def ordered(self) -> list[tuple[str, float]]:
        """(name, score) pairs, strongest first."""
        return sorted(zip(self.feature_names, self.scores), key=lambda kv: kv[1], reverse=True)

    def top_k(self, k: int) -> list[str]:
        """Names of the k strongest features."""
        if k < 1:
            raise ValueError("k must be >= 1")
        return [name for name, _ in self.ordered()[:k]]


def rank_features(
    features: dict[str, np.ndarray],
    target: np.ndarray,
    *,
    target_name: str = "target",
    k_neighbors: int = 3,
    seed: int = 0,
) -> FeatureRanking:
    """Rank named feature arrays against one target by KSG MI."""
    if not features:
        raise ValueError("features must not be empty")
    names = tuple(features.keys())
    scores = tuple(
        mutual_information(features[name], target, k=k_neighbors, seed=seed) for name in names
    )
    return FeatureRanking(target_name=target_name, feature_names=names, scores=scores)


def select_top_k(
    features: dict[str, np.ndarray],
    targets: dict[str, np.ndarray],
    *,
    k: int = 3,
    k_neighbors: int = 3,
    seed: int = 0,
) -> list[str]:
    """Features ranked by *combined* MI across all predictands.

    The paper selects one feature set that serves both the power and the
    time model; combining per-target normalised scores by summation picks
    features that are informative for both.
    """
    rankings = [
        rank_features(features, target, target_name=name, k_neighbors=k_neighbors, seed=seed)
        for name, target in targets.items()
    ]
    names = rankings[0].feature_names
    combined = np.zeros(len(names))
    for ranking in rankings:
        combined += np.asarray(ranking.normalized())
    order = np.argsort(combined)[::-1]
    return [names[i] for i in order[:k]]
