"""Pareto-front tools over the (energy, time) objective plane.

Everything minimises: a configuration dominates another when it is no
worse in both energy and time and strictly better in at least one.
"""

from __future__ import annotations

import numpy as np

from repro.units import JoulesArray, SecondsArray

__all__ = ["pareto_front", "knee_point", "hypervolume_2d"]


def _check_objectives(energy: JoulesArray, time: SecondsArray) -> tuple[JoulesArray, SecondsArray]:
    energy = np.asarray(energy, dtype=float).reshape(-1)
    time = np.asarray(time, dtype=float).reshape(-1)
    if energy.size != time.size:
        raise ValueError(f"energy and time disagree: {energy.size} vs {time.size}")
    if energy.size == 0:
        raise ValueError("empty objective set")
    if np.any(~np.isfinite(energy)) or np.any(~np.isfinite(time)):
        raise ValueError("objectives must be finite")
    return energy, time


def pareto_front(energy: JoulesArray, time: SecondsArray) -> np.ndarray:
    """Indices of the non-dominated configurations, sorted by time.

    O(n log n): sweep by ascending time (ties broken by energy) and keep
    points whose energy strictly improves on the best seen so far.
    """
    energy, time = _check_objectives(energy, time)
    order = np.lexsort((energy, time))
    front: list[int] = []
    best_energy = np.inf
    for idx in order:
        if energy[idx] < best_energy - 1e-300:
            front.append(int(idx))
            best_energy = energy[idx]
    return np.asarray(front, dtype=int)


def knee_point(energy: JoulesArray, time: SecondsArray) -> int:
    """Index of the front's knee: maximum distance to the extreme chord.

    The classic "best trade-off" heuristic: normalise both objectives
    over the front, draw the line between the two extreme points, and
    pick the front point farthest from it.  Degenerate fronts (<= 2
    points) return the lower-energy end.
    """
    energy, time = _check_objectives(energy, time)
    front = pareto_front(energy, time)
    if front.size <= 2:
        return int(front[np.argmin(energy[front])])
    e = energy[front]
    t = time[front]
    e_span = np.ptp(e)
    t_span = np.ptp(t)
    e_norm = (e - e.min()) / (e_span if e_span > 0 else 1.0)
    t_norm = (t - t.min()) / (t_span if t_span > 0 else 1.0)
    # Chord from (min time, max energy) end to (max time, min energy) end.
    p1 = np.array([t_norm[0], e_norm[0]])
    p2 = np.array([t_norm[-1], e_norm[-1]])
    chord = p2 - p1
    norm = np.linalg.norm(chord)
    if norm <= 0.0:
        return int(front[0])
    points = np.column_stack([t_norm, e_norm]) - p1
    distances = np.abs(points[:, 0] * chord[1] - points[:, 1] * chord[0]) / norm
    return int(front[np.argmax(distances)])


def hypervolume_2d(
    energy: JoulesArray,
    time: SecondsArray,
    *,
    reference: tuple[float, float] | None = None,
) -> float:
    """Dominated hypervolume (area) of the front w.r.t. a reference point.

    ``reference`` defaults to (max time, max energy) over the set — every
    candidate then contributes non-negative area.  Larger is better.
    """
    energy, time = _check_objectives(energy, time)
    if reference is None:
        ref_t, ref_e = float(time.max()), float(energy.max())
    else:
        ref_t, ref_e = float(reference[0]), float(reference[1])
    front = pareto_front(energy, time)
    area = 0.0
    prev_t = ref_t
    # Walk the front from largest time (lowest energy) to smallest.
    for idx in front[::-1]:
        t, e = time[idx], energy[idx]
        if t > ref_t or e > ref_e:
            continue  # outside the reference box contributes nothing
        area += (prev_t - t) * (ref_e - e)
        prev_t = t
    return float(area)
