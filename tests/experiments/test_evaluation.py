"""EvaluationSuite unit tests (shared computation behind Figs 7-10)."""

import numpy as np
import pytest

from repro.experiments.evaluation import EvaluationSuite


class TestSuiteCaching:
    def test_evaluate_is_cached(self, fast_ctx, fast_suite):
        a = fast_suite.evaluate("lstm", "GA100")
        b = fast_suite.evaluate("LSTM", "ga100")
        assert a is b

    def test_evaluate_all_covers_six(self, fast_ctx, fast_suite):
        evs = fast_suite.evaluate_all("GA100")
        assert len(evs) == 6
        assert len({ev.app for ev in evs}) == 6


class TestAppEvaluationContract:
    @pytest.fixture(scope="class")
    def ev(self, fast_suite):
        return fast_suite.evaluate("namd", "GA100")

    def test_curve_shapes_agree(self, ev):
        n = ev.freqs_mhz.size
        for arr in (ev.power_measured_w, ev.power_predicted_w, ev.time_measured_s, ev.time_predicted_s):
            assert arr.shape == (n,)

    def test_energy_properties(self, ev):
        assert np.allclose(ev.energy_measured_j, ev.power_measured_w * ev.time_measured_s)
        assert np.allclose(ev.energy_predicted_j, ev.power_predicted_w * ev.time_predicted_s)

    def test_four_selection_methods(self, ev):
        assert set(ev.selections) == {"M-EDP", "P-EDP", "M-ED2P", "P-ED2P"}

    def test_realised_changes_reference_is_fmax(self, ev):
        """A selection at f_max must realise exactly zero change."""
        import dataclasses

        import numpy as np

        from repro.core.selection import SelectionResult

        pin = SelectionResult(
            freq_mhz=float(ev.freqs_mhz[-1]),
            index=ev.freqs_mhz.size - 1,
            objective_name="PIN",
            scores=np.zeros(ev.freqs_mhz.size),
            perf_degradation=0.0,
            energy_saving=0.0,
            threshold_applied=False,
        )
        patched = dataclasses.replace(ev, selections={**ev.selections, "PIN": pin})
        e, t = patched.realised_changes("PIN")
        assert e == pytest.approx(0.0)
        assert t == pytest.approx(0.0)

    def test_realised_changes_sign_convention(self, ev):
        """M-EDP saves energy (positive) and loses time (non-positive-ish)."""
        e, t = ev.realised_changes("M-EDP")
        assert e > 0.0
        assert t < 5.0  # time gain beyond noise would be a bug

    def test_features_carried(self, ev):
        assert 0.0 <= ev.features.fp_active <= 1.0
        assert 0.0 <= ev.features.dram_active <= 1.0
        assert ev.features.sm_app_clock == 1410.0

    def test_accuracies_in_percent_band(self, ev):
        assert 0.0 <= ev.power_accuracy <= 100.0
        assert 0.0 <= ev.time_accuracy <= 100.0
