"""Rule base class and the process-wide rule registry.

A rule is a stateless object with an id (``^[A-Z]{3,5}\\d{3}$``), a
severity, a one-line summary, a rationale paragraph, and a ``check``
method producing findings for one :class:`ModuleContext`.  Registration
happens at import time via the :func:`register` decorator; the engine
asks :func:`all_rules` for the full ordered set.
"""

from __future__ import annotations

import re
from typing import Iterable

from repro.devtools.context import ModuleContext
from repro.devtools.findings import SEVERITIES, Finding

__all__ = ["Rule", "register", "all_rules", "get_rule", "rule_ids"]

_RULE_ID_RE = re.compile(r"^[A-Z]{3,5}\d{3}$")

_REGISTRY: dict[str, "Rule"] = {}


class Rule:
    """One invariant check; subclasses set the class attributes below."""

    rule_id: str = ""
    severity: str = "error"
    summary: str = ""
    rationale: str = ""
    #: Interprocedural rules set this; the engine then builds one shared
    #: :class:`repro.devtools.graph.ProjectIndex` per run and exposes it
    #: as ``ctx.project`` before ``check`` is called.
    needs_project: bool = False

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        """Findings for one module (empty iterable when clean)."""
        raise NotImplementedError

    def finding(self, ctx: ModuleContext, node, message: str) -> Finding:
        return ctx.finding(self, node, message)


def register(cls: type[Rule]) -> type[Rule]:
    """Class decorator: validate and add one rule instance to the registry."""
    rule = cls()
    if not _RULE_ID_RE.match(rule.rule_id):
        raise ValueError(f"bad rule id {rule.rule_id!r} on {cls.__name__} (want e.g. DET001)")
    if rule.severity not in SEVERITIES:
        raise ValueError(f"bad severity {rule.severity!r} on {rule.rule_id} (want {SEVERITIES})")
    if not rule.summary:
        raise ValueError(f"rule {rule.rule_id} needs a one-line summary")
    if rule.rule_id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule.rule_id}")
    _REGISTRY[rule.rule_id] = rule
    return cls


def all_rules() -> list[Rule]:
    """Every registered rule, ordered by id."""
    return [_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY)]


def rule_ids() -> list[str]:
    """Sorted registered rule ids."""
    return sorted(_REGISTRY)


def get_rule(rule_id: str) -> Rule:
    """Registered rule by id (raises KeyError with the known set)."""
    try:
        return _REGISTRY[rule_id]
    except KeyError:
        raise KeyError(f"unknown rule {rule_id!r}; known: {', '.join(sorted(_REGISTRY))}") from None
