"""Report rendering: JSON schema, text format, and the CLI surface."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.devtools import Baseline, render_text, run_check

_REPORT_KEYS = {
    "schema",
    "ok",
    "root",
    "files_checked",
    "rules",
    "findings",
    "baselined",
    "stale_baseline",
    "parse_errors",
    "suppressed",
    "duration_s",
}


@pytest.fixture(scope="module")
def report():
    return run_check()


def test_json_schema_keys(report):
    payload = json.loads(report.to_json())
    assert set(payload) == _REPORT_KEYS
    assert payload["schema"] == 1
    assert isinstance(payload["files_checked"], int)
    for rule in payload["rules"]:
        assert set(rule) == {"id", "severity", "summary"}
    for finding in payload["findings"] + payload["baselined"]:
        assert set(finding) == {"path", "line", "col", "rule", "severity", "message"}


def test_render_text_has_summary_line(report):
    text = render_text(report)
    last = text.splitlines()[-1]
    assert last.startswith(f"checked {report.files_checked} files")
    assert "rules" in last


def test_render_text_lists_findings():
    findings_report = run_check(baseline=Baseline())
    text = render_text(findings_report)
    for finding in findings_report.findings:
        assert finding.render() in text
        # path:line:col prefix keeps locations editor-clickable.
        assert finding.render().startswith(f"{finding.path}:{finding.line}:")


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def test_cli_check_exits_zero_on_shipped_tree(capsys):
    assert main(["check"]) == 0
    out = capsys.readouterr().out
    assert "no violations" in out


def test_cli_check_json_parses(capsys):
    assert main(["check", "--format", "json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["ok"] is True


def test_cli_check_list_rules(capsys):
    assert main(["check", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("DET001", "DET002", "THR001", "NUM001", "OBS001"):
        assert rule_id in out


def test_cli_check_rule_subset(capsys):
    assert main(["check", "--rules", "obs001"]) == 0
    payload_ok = capsys.readouterr().out
    assert "1 rules" in payload_ok


def test_cli_check_unknown_rule_is_usage_error(capsys):
    assert main(["check", "--rules", "NOPE01"]) == 2
    assert "unknown rule ids" in capsys.readouterr().err


def test_cli_check_no_baseline_reports_grandfathered(capsys):
    # The shipped tree has baselined entries; without the baseline they
    # surface as live findings and the exit code flips to 1.
    code = main(["check", "--no-baseline"])
    out = capsys.readouterr().out
    assert code == 1
    assert "violation" in out


def test_cli_check_missing_baseline_path_is_usage_error(capsys):
    assert main(["check", "--baseline", "/nonexistent/b.json"]) == 2
    assert "no such baseline" in capsys.readouterr().err
