"""Feature scalers with fit/transform/inverse_transform contracts.

The DNN trains on standardised features and targets; predictions are
mapped back through ``inverse_transform``.  Both scalers are stateless
until :meth:`fit` and refuse to transform before fitting — silent
identity transforms are how scaling bugs hide.
"""

from __future__ import annotations

import numpy as np

__all__ = ["StandardScaler", "MinMaxScaler"]


class StandardScaler:
    """Zero-mean unit-variance scaling, column-wise."""

    def __init__(self) -> None:
        self.mean_: np.ndarray | None = None
        self.scale_: np.ndarray | None = None

    def fit(self, x: np.ndarray) -> "StandardScaler":
        """Learn column means and standard deviations."""
        x = np.atleast_2d(np.asarray(x, dtype=float))
        self.mean_ = x.mean(axis=0)
        scale = x.std(axis=0)
        # Constant columns scale by 1 so transform maps them to zero
        # rather than dividing by zero.
        self.scale_ = np.where(scale > 0, scale, 1.0)
        return self

    def transform(self, x: np.ndarray) -> np.ndarray:
        """Apply the learned scaling."""
        if self.mean_ is None or self.scale_ is None:
            raise RuntimeError("scaler used before fit()")
        return (np.asarray(x, dtype=float) - self.mean_) / self.scale_

    def fit_transform(self, x: np.ndarray) -> np.ndarray:
        """Fit then transform in one call."""
        return self.fit(x).transform(x)

    def inverse_transform(self, x: np.ndarray) -> np.ndarray:
        """Map scaled values back to the original units."""
        if self.mean_ is None or self.scale_ is None:
            raise RuntimeError("scaler used before fit()")
        return np.asarray(x, dtype=float) * self.scale_ + self.mean_


class MinMaxScaler:
    """Scale columns into [0, 1] by observed range."""

    def __init__(self) -> None:
        self.min_: np.ndarray | None = None
        self.range_: np.ndarray | None = None

    def fit(self, x: np.ndarray) -> "MinMaxScaler":
        """Learn column minima and ranges."""
        x = np.atleast_2d(np.asarray(x, dtype=float))
        self.min_ = x.min(axis=0)
        rng = x.max(axis=0) - self.min_
        self.range_ = np.where(rng > 0, rng, 1.0)
        return self

    def transform(self, x: np.ndarray) -> np.ndarray:
        """Apply the learned scaling."""
        if self.min_ is None or self.range_ is None:
            raise RuntimeError("scaler used before fit()")
        return (np.asarray(x, dtype=float) - self.min_) / self.range_

    def fit_transform(self, x: np.ndarray) -> np.ndarray:
        """Fit then transform in one call."""
        return self.fit(x).transform(x)

    def inverse_transform(self, x: np.ndarray) -> np.ndarray:
        """Map scaled values back to the original units."""
        if self.min_ is None or self.range_ is None:
            raise RuntimeError("scaler used before fit()")
        return np.asarray(x, dtype=float) * self.range_ + self.min_
