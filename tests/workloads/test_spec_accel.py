"""SPEC ACCEL proxy tests: census scaling laws and benchmark character."""

import numpy as np
import pytest

from repro.gpusim import GA100, SimulatedGPU
from repro.gpusim.noise import NoiseModel
from repro.workloads import spec_accel, training_workloads
from repro.workloads.base import WorkloadCategory

ALL_SPEC = [
    spec_accel.TPACF(),
    spec_accel.Stencil(),
    spec_accel.LBM(),
    spec_accel.FFT(),
    spec_accel.SPMV(),
    spec_accel.MRIQ(),
    spec_accel.Histo(),
    spec_accel.BFS(),
    spec_accel.CUTCP(),
    spec_accel.KMeans(),
    spec_accel.LavaMD(),
    spec_accel.CFD(),
    spec_accel.NW(),
    spec_accel.Hotspot(),
    spec_accel.LUD(),
    spec_accel.GE(),
    spec_accel.SRAD(),
    spec_accel.HeartWall(),
    spec_accel.BPlusTree(),
]


@pytest.mark.parametrize("workload", ALL_SPEC, ids=lambda w: w.name)
class TestEverySpecWorkload:
    def test_census_valid_at_default_size(self, workload):
        c = workload.census()
        assert c.total_flops >= 0
        assert c.dram_bytes > 0

    def test_category(self, workload):
        assert workload.category is WorkloadCategory.SPEC_ACCEL

    def test_census_deterministic(self, workload):
        a, b = workload.census(), workload.census()
        assert a.total_flops == b.total_flops
        assert a.dram_bytes == b.dram_bytes

    def test_census_grows_with_size(self, workload):
        small = workload.census(workload.min_size)
        # Pick a bigger-but-legal size.
        big_size = min(workload.max_size, workload.min_size * 4)
        big = workload.census(big_size)
        assert big.total_flops >= small.total_flops
        assert big.dram_bytes >= small.dram_bytes

    def test_size_below_min_rejected(self, workload):
        with pytest.raises(ValueError, match="size"):
            workload.census(workload.min_size - 1)

    def test_runtime_reasonable_on_ga100(self, workload):
        """Default sizes must run between ~0.1 s and 120 s at f_max."""
        dev = SimulatedGPU(GA100, seed=0, noise=NoiseModel.disabled())
        t = dev.true_time(workload.census(), 1410.0)
        assert 0.05 < t < 120.0


class TestScalingLaws:
    """Each proxy's census must follow its algorithm's complexity."""

    def test_tpacf_quadratic_in_points(self):
        w = spec_accel.TPACF(datasets=1)
        ratio = w.census(2000).flops_fp64 / w.census(1000).flops_fp64
        assert ratio == pytest.approx(4.0, rel=0.01)

    def test_stencil_cubic_in_edge(self):
        w = spec_accel.Stencil(iterations=1)
        ratio = w.census(64).flops_fp32 / w.census(32).flops_fp32
        assert ratio == pytest.approx(8.0, rel=0.01)

    def test_fft_nlogn(self):
        w = spec_accel.FFT(batches=1, repetitions=1)
        f1 = w.census(1024).flops_fp32
        f2 = w.census(2048).flops_fp32
        assert f2 / f1 == pytest.approx(2.0 * 11.0 / 10.0, rel=0.01)

    def test_spmv_linear_in_nnz(self):
        w = spec_accel.SPMV(repetitions=1)
        ratio = w.census(2_000_000).flops_fp64 / w.census(1_000_000).flops_fp64
        assert ratio == pytest.approx(2.0, rel=0.01)

    def test_lud_cubic(self):
        w = spec_accel.LUD(repetitions=1)
        ratio = w.census(512).flops_fp32 / w.census(256).flops_fp32
        assert ratio == pytest.approx(8.0, rel=0.01)

    def test_nw_quadratic(self):
        w = spec_accel.NW(alignments=1)
        ratio = w.census(1024).flops_fp32 / w.census(512).flops_fp32
        assert ratio == pytest.approx(4.0, rel=0.01)

    def test_lavamd_cubic_in_grid(self):
        w = spec_accel.LavaMD(iterations=1)
        ratio = w.census(8).flops_fp64 / w.census(4).flops_fp64
        assert ratio == pytest.approx(8.0, rel=0.01)


class TestCharacterDiversity:
    """The suite must span compute-bound to memory/latency-bound."""

    @pytest.fixture(scope="class")
    def activities(self):
        dev = SimulatedGPU(GA100, seed=0, noise=NoiseModel.disabled())
        out = {}
        for w in ALL_SPEC:
            bd = dev.timing.evaluate(w.census(), 1410.0)
            out[w.name] = (bd.fp_active, bd.dram_active)
        return out

    def test_compute_bound_group(self, activities):
        for name in ("tpacf", "mriq", "cutcp", "lavamd"):
            fp, dram = activities[name]
            assert fp > 0.5, f"{name} should be compute-bound (fp={fp:.2f})"

    def test_memory_bound_group(self, activities):
        for name in ("spmv", "lbm", "stencil", "hotspot", "srad"):
            fp, dram = activities[name]
            assert dram > 0.45, f"{name} should be memory-bound (dram={dram:.2f})"
            assert fp < 0.3

    def test_latency_bound_group_low_everything(self, activities):
        for name in ("bfs", "bplustree", "histo"):
            fp, dram = activities[name]
            assert fp < 0.15, f"{name} should have low FP activity"

    def test_activity_space_spread(self, activities):
        """Training data must cover the feature plane, not one cluster."""
        fps = np.array([v[0] for v in activities.values()])
        drams = np.array([v[1] for v in activities.values()])
        assert fps.max() - fps.min() > 0.5
        assert drams.max() - drams.min() > 0.5


class TestReferenceKernels:
    def test_stencil_reference_shrinks_variance(self):
        """A smoothing stencil must reduce the field's variance."""
        w = spec_accel.Stencil()
        out = w.run_reference(24, np.random.default_rng(0))
        assert np.isfinite(out["checksum"])

    def test_histo_reference_counts_all(self):
        w = spec_accel.Histo()
        out = w.run_reference(50_000, np.random.default_rng(0))
        assert out["checksum"] >= 1

    def test_spmv_reference_runs(self):
        w = spec_accel.SPMV()
        out = w.run_reference(20_000, np.random.default_rng(0))
        assert np.isfinite(out["checksum"])

    def test_kmeans_reference_assignments(self):
        w = spec_accel.KMeans()
        out = w.run_reference(512, np.random.default_rng(0))
        assert 0 <= out["checksum"] <= 512 * (w.clusters - 1)

    def test_bfs_reference_reaches_nodes(self):
        w = spec_accel.BFS()
        out = w.run_reference(4096, np.random.default_rng(0))
        assert out["checksum"] > 0

    def test_fft_reference_parseval_like(self):
        w = spec_accel.FFT()
        out = w.run_reference(256, np.random.default_rng(0))
        assert out["checksum"] > 0

    def test_lud_reference_runs(self):
        w = spec_accel.LUD()
        out = w.run_reference(64, np.random.default_rng(0))
        assert np.isfinite(out["checksum"])

    def test_training_set_includes_all_spec(self):
        names = {w.name for w in training_workloads()}
        for w in ALL_SPEC:
            assert w.name in names
