"""Workload models: the 21 training benchmarks and 6 real applications.

Each workload produces a :class:`~repro.gpusim.kernel.KernelCensus` — the
frequency-independent op/byte accounting — from an input-size parameter.
The census math follows each algorithm's actual complexity (e.g. DGEMM
performs ``2 n^3`` FLOPs and moves ``~2 n^3 8 / tile`` DRAM bytes under
blocking), so the (fp_active, dram_active) signatures the paper's models
key on emerge from first principles instead of being hard-coded.

Training set (paper Table 2): DGEMM, STREAM, and the 19 SPEC ACCEL
benchmarks.  Evaluation set: LAMMPS, NAMD, GROMACS, LSTM, BERT, ResNet50.

A few workloads also ship a runnable NumPy reference kernel
(:meth:`Workload.run_reference`) used by tests to sanity-check the census
arithmetic against an actual computation.
"""

from repro.workloads.base import Workload, WorkloadCategory
from repro.workloads.microbench import DGEMM, STREAM
from repro.workloads.registry import (
    WorkloadRegistry,
    default_registry,
    evaluation_workloads,
    get_workload,
    training_workloads,
)
from repro.workloads.trace import Phase, PhasedWorkload, RecommenderTraining, merge_censuses

__all__ = [
    "Workload",
    "WorkloadCategory",
    "DGEMM",
    "STREAM",
    "WorkloadRegistry",
    "default_registry",
    "get_workload",
    "training_workloads",
    "evaluation_workloads",
    "Phase",
    "PhasedWorkload",
    "RecommenderTraining",
    "merge_censuses",
]
