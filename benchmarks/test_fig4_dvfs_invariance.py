"""Figure 4: activity invariance under DVFS.

Shape assertions (paper Section 4.2.2): FP activity almost unaffected by
clock changes; memory activity varies "to some extent" but stays bounded.
"""

import pytest

from repro.experiments.fig4 import relative_spread, render_fig4, run_fig4


@pytest.fixture(scope="module")
def fig4(ctx):
    return run_fig4(ctx)


def test_fig4_regenerate(benchmark, ctx, fig4, report):
    benchmark(run_fig4, ctx)
    report("Figure 4 - DVFS invariance of activities", render_fig4(fig4))


def test_fig4_fp_invariant(fig4):
    assert relative_spread(fig4.dgemm.fp_active) < 0.12


def test_fig4_dram_bounded(fig4):
    assert relative_spread(fig4.stream.dram_active) < 0.25
    assert relative_spread(fig4.dgemm.dram_active) < 0.60
