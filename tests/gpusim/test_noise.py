"""Noise-model tests: reproducibility, positivity, magnitudes."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpusim import NoiseModel


class TestDisabled:
    def test_disabled_is_identity(self):
        noise = NoiseModel.disabled()
        rng = np.random.default_rng(0)
        assert noise.perturb_power(rng, 123.4) == 123.4
        assert noise.perturb_time(rng, 5.6) == 5.6
        assert noise.perturb_activity(rng, 0.7) == 0.7


class TestReproducibility:
    def test_same_seed_same_samples(self):
        noise = NoiseModel()
        a = noise.perturb_power(np.random.default_rng(7), 100.0)
        b = noise.perturb_power(np.random.default_rng(7), 100.0)
        assert a == b

    def test_different_seeds_differ(self):
        noise = NoiseModel()
        a = noise.perturb_power(np.random.default_rng(1), 100.0)
        b = noise.perturb_power(np.random.default_rng(2), 100.0)
        assert a != b


class TestStatistics:
    def test_power_noise_magnitude(self):
        noise = NoiseModel(power_rel_std=0.02)
        rng = np.random.default_rng(0)
        samples = np.array([noise.perturb_power(rng, 100.0) for _ in range(4000)])
        assert samples.mean() == pytest.approx(100.0, rel=0.01)
        assert samples.std() == pytest.approx(2.0, rel=0.2)

    def test_unbiased_time(self):
        noise = NoiseModel(time_rel_std=0.01)
        rng = np.random.default_rng(0)
        samples = np.array([noise.perturb_time(rng, 10.0) for _ in range(4000)])
        assert samples.mean() == pytest.approx(10.0, rel=0.01)

    @given(value=st.floats(min_value=1e-6, max_value=1e6))
    @settings(max_examples=50, deadline=None)
    def test_lognormal_keeps_positive(self, value):
        noise = NoiseModel(power_rel_std=0.5)
        rng = np.random.default_rng(3)
        assert noise.perturb_power(rng, value) > 0

    @given(fraction=st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=50, deadline=None)
    def test_activity_clipped_to_unit_interval(self, fraction):
        noise = NoiseModel(activity_rel_std=0.5)
        rng = np.random.default_rng(4)
        out = noise.perturb_activity(rng, fraction, extra_std=0.5)
        assert 0.0 <= out <= 1.0


class TestValidation:
    def test_negative_std_rejected(self):
        with pytest.raises(ValueError, match="power_rel_std"):
            NoiseModel(power_rel_std=-0.1)
