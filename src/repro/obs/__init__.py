"""Unified observability layer: metrics, tracing, and run manifests.

Three orthogonal pieces share this package (see DESIGN.md §10):

* :mod:`repro.obs.metrics` — process-local typed metrics
  (Counter / Gauge / Histogram) behind a named registry, exported as
  Prometheus text or round-trippable JSON.
* :mod:`repro.obs.trace` — span tracer with parent/child nesting, a
  JSONL sink plus bounded ring buffer, and a no-op fast path that makes
  permanent instrumentation of hot loops free when tracing is off.
* :mod:`repro.obs.manifest` — one structured provenance record per CLI
  invocation (config hash, seed, model fingerprints, git state, wall
  time, metric snapshot).

The instrumentation contract for the rest of the codebase: importing
and calling into ``repro.obs`` must never perturb numerics, RNG
streams, or public APIs — the golden suite runs fully traced and is
asserted bitwise-identical to the untraced run.
"""

from repro.obs.manifest import (
    RunContext,
    RunManifest,
    annotate,
    config_hash,
    current_run,
    git_describe,
    start_run,
    write_manifest,
)
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS_S,
    Counter,
    Gauge,
    Histogram,
    HistogramSnapshot,
    MetricsRegistry,
    get_registry,
    registry_from_json,
)
from repro.obs.summarize import (
    load_events,
    render_summary,
    summarize_events,
    summarize_file,
)
from repro.obs.trace import (
    Span,
    Tracer,
    configure,
    disable,
    event,
    get_tracer,
    is_enabled,
    span,
)

__all__ = [
    # metrics
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramSnapshot",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS_S",
    "get_registry",
    "registry_from_json",
    # trace
    "Span",
    "Tracer",
    "span",
    "event",
    "configure",
    "disable",
    "get_tracer",
    "is_enabled",
    # manifest
    "RunManifest",
    "RunContext",
    "start_run",
    "current_run",
    "annotate",
    "config_hash",
    "git_describe",
    "write_manifest",
    # summaries
    "load_events",
    "summarize_events",
    "summarize_file",
    "render_summary",
]
