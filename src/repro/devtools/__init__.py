"""Repo-specific static analysis (``repro check``).

The reproduction's headline numbers — 89-98 % model accuracy, bitwise
identical batched serving, worker-count-invariant parallel collection —
rest on invariants that runtime golden tests can only catch *after* a
regression lands.  This package enforces them before the code runs, with
a stdlib-``ast`` rule engine:

* **DET001** — no ambient entropy (module-level ``np.random``, stdlib
  ``random``, wall clocks, ``os.urandom``) inside seeded packages.
* **DET002** — functions holding an ``rng``/``seed`` parameter must
  thread it; never construct fresh unseeded generators.
* **THR001** — lock-owning classes mutate their shared attributes only
  under the lock.
* **NUM001** — no ``==``/``!=`` between float-typed expressions.
* **OBS001** — no ``print()``/ad-hoc wall timing in library code; route
  through :mod:`repro.obs`.

On top of the per-file rules sits an **interprocedural layer**
(:mod:`repro.devtools.graph`): a project-wide call graph with
module-qualified resolution, and rules that reason along its edges:

* **UNIT001/UNIT002** — physical-units inference (W x s -> J, EDP,
  ED²P; see :mod:`repro.devtools.units` and :mod:`repro.units`).
* **DET003** — seed-lineage taint analysis: every Generator inside a
  seeded package must derive from a caller-supplied root.
* **THR002/THR003/THR004** — concurrency analysis over inferred
  execution contexts (:mod:`repro.devtools.concurrency`): shared-state
  mutation without a common held lock, lock-order inversion, and
  fork-unsafe captures (locks/files/RNG crossing a ``Process`` spawn).
* **RES001** — resource-lifetime escape analysis: acquired handles
  (``SharedMemory``, files, locks) must be released on every path or
  have their ownership transferred.
* **NUM002/SHAPE001/PERF001/PURE001** — numeric dataflow analysis
  (:mod:`repro.devtools.numeric`): an abstract ``(dtype, rank,
  symbolic-dims)`` lattice propagated through numpy calls and resolved
  call edges catches float64-pipeline drift and provable broadcast/
  matmul mismatches; a computed hot set (call-graph descendants of the
  serving flush / fused infer / telemetry collection roots) scopes the
  perf-hygiene lint; and cache feeds (serving curve cache, ``*_cache``
  stores, ``@lru_cache``) are proven return-pure — no clock, unseeded
  RNG, I/O, or mutated global taints a cached value.
* **PARSE001** — unparseable files are reported as findings, not
  crashes.

``repro graph`` dumps the call graph (JSON/DOT), the declared unit
table (``--units``), and the inferred dtype/purity facts
(``--dtypes``).  ``repro check --jobs N`` parses on a process pool and
``--stats`` renders per-rule wall time.  Findings can be silenced
inline (``# repro: noqa[RULE]``) or grandfathered in a committed
baseline file with a justification — per-entry, or shared per rule id
via ``rule_justifications``; the tier-1 gate
(``tests/devtools/test_gate.py``) fails on anything else.
See DESIGN.md §11-§12 and §16-§17 for the workflow.
"""

from repro.devtools.baseline import Baseline, BaselineEntry
from repro.devtools.engine import (
    CheckReport,
    check_source,
    default_baseline_path,
    default_root,
    render_github,
    render_stats,
    render_text,
    run_check,
)
from repro.devtools.findings import Finding
from repro.devtools.graph import CallGraph, ProjectIndex, index_from_root
from repro.devtools.rules import all_rules, get_rule, rule_ids

__all__ = [
    "Baseline",
    "BaselineEntry",
    "CallGraph",
    "CheckReport",
    "Finding",
    "ProjectIndex",
    "all_rules",
    "check_source",
    "default_baseline_path",
    "default_root",
    "get_rule",
    "index_from_root",
    "render_github",
    "render_stats",
    "render_text",
    "rule_ids",
    "run_check",
]
