"""Ablation: optimizers (the paper's five-way sweep).

Shape assertion: RMSprop — the paper's choice — is top-tier on unseen
applications.
"""

import pytest

from repro.experiments.ablations import render_ablation, run_optimizer_ablation


@pytest.fixture(scope="module")
def rows(ctx, suite):
    return run_optimizer_ablation(ctx, suite=suite)


def test_optimizer_ablation_report(benchmark, rows, report):
    benchmark(render_ablation, "Ablation: optimizers (power model)", rows)
    report("Ablation - optimizers", render_ablation("Ablation: optimizers (power model)", rows))


def test_all_five_variants(rows):
    assert {r.variant for r in rows} == {"adam", "adamax", "nadam", "rmsprop", "adadelta"}


def test_rmsprop_top_tier(rows):
    accs = {r.variant: r.eval_accuracy for r in rows}
    assert accs["rmsprop"] >= max(accs.values()) - 4.0


def test_optimizer_sweep_is_near_tie(rows):
    """All five adaptive optimizers land within a few points — the
    paper's RMSprop choice is safe but not uniquely optimal."""
    accs = {r.variant: r.eval_accuracy for r in rows}
    assert max(accs.values()) - min(accs.values()) < 8.0
