"""Figure 10 / Table 5 core claim: energy savings at small time cost.

Shape assertions (paper Section 5.3): substantial average energy saving
under M-ED2P with far smaller time loss than M-EDP; predicted selections
realise savings close to measured ones; GROMACS/LSTM nearly free.
"""

import pytest

from repro.experiments.fig10 import render_fig10, run_fig10


@pytest.fixture(scope="module")
def fig10(ctx, suite):
    return run_fig10(ctx, suite=suite)


def test_fig10_report(benchmark, fig10, report):
    benchmark(render_fig10, fig10)
    report("Figure 10 - realised energy and time changes", render_fig10(fig10))


def test_fig10_ed2p_average_savings(fig10):
    e_avg, t_avg = fig10.average("M-ED2P")
    # Paper: 28.2% energy at -1.8% time.  The simulator's steeper voltage
    # ramp roughly doubles the energy side (documented in EXPERIMENTS.md).
    assert e_avg > 20.0
    assert t_avg > -12.0


def test_fig10_ed2p_gentler_than_edp(fig10):
    _, t_ed2p = fig10.average("M-ED2P")
    _, t_edp = fig10.average("M-EDP")
    assert t_ed2p >= t_edp


def test_fig10_predicted_tracks_measured(fig10):
    e_m, _ = fig10.average("M-ED2P")
    e_p, _ = fig10.average("P-ED2P")
    assert abs(e_m - e_p) < 12.0


def test_fig10_insensitive_apps_nearly_free(fig10):
    for app in ("gromacs", "lstm"):
        row = next(r for r in fig10.rows if r.app == app)
        assert row.time_pct["M-ED2P"] > -6.0
        assert row.energy_pct["M-ED2P"] > 25.0
