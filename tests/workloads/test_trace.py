"""Phase/trace workload tests."""

import numpy as np
import pytest

from repro.gpusim import GA100, KernelCensus, NoiseModel, SimulatedGPU
from repro.workloads.trace import Phase, PhasedWorkload, RecommenderTraining, merge_censuses


def phase(name, *, flops=1e12, dram=1e11, weight=1.0, **kw):
    return Phase(name, KernelCensus(flops_fp64=flops, dram_bytes=dram, **kw), duration_weight=weight)


class TestMerge:
    def test_extensive_quantities_sum(self):
        merged = merge_censuses([phase("a", flops=1e12, dram=1e11), phase("b", flops=2e12, dram=3e11)])
        assert merged.flops_fp64 == pytest.approx(3e12)
        assert merged.dram_bytes == pytest.approx(4e11)

    def test_intensive_quantities_weighted(self):
        a = phase("a", occupancy=0.4, weight=1.0)
        b = phase("b", occupancy=0.8, weight=3.0)
        merged = merge_censuses([a, b])
        assert merged.occupancy == pytest.approx(0.4 * 0.25 + 0.8 * 0.75)

    def test_single_phase_identity(self):
        p = phase("solo", flops=5e11, dram=2e11, occupancy=0.66)
        merged = merge_censuses([p])
        assert merged.flops_fp64 == p.census.flops_fp64
        assert merged.occupancy == pytest.approx(0.66)

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            merge_censuses([])

    def test_nonpositive_weight_rejected(self):
        with pytest.raises(ValueError, match="duration_weight"):
            phase("bad", weight=0.0)


class TestRecommender:
    def test_two_phases(self):
        phases = RecommenderTraining().phases()
        assert [p.name for p in phases] == ["embedding", "mlp"]

    def test_phases_scale_with_steps(self):
        w = RecommenderTraining()
        small = w.phases(100)
        large = w.phases(1000)
        for s, l in zip(small, large):
            assert l.census.total_flops == pytest.approx(10.0 * s.census.total_flops, rel=0.01)

    def test_phases_occupy_opposite_corners(self):
        dev = SimulatedGPU(GA100, seed=0, noise=NoiseModel.disabled())
        phases = RecommenderTraining().phases()
        bd = {p.name: dev.timing.evaluate(p.census, 1410.0) for p in phases}
        assert bd["mlp"].fp_active > 0.5
        assert bd["mlp"].dram_active < 0.2
        assert bd["embedding"].fp_active < 0.1
        assert bd["embedding"].dram_active > 0.3

    def test_merged_census_sits_between(self):
        dev = SimulatedGPU(GA100, seed=0, noise=NoiseModel.disabled())
        w = RecommenderTraining()
        merged_bd = dev.timing.evaluate(w.census(), 1410.0)
        phases = {p.name: dev.timing.evaluate(p.census, 1410.0) for p in w.phases()}
        assert phases["embedding"].fp_active < merged_bd.fp_active < phases["mlp"].fp_active

    def test_runtime_reasonable(self):
        dev = SimulatedGPU(GA100, seed=0, noise=NoiseModel.disabled())
        total = sum(dev.true_time(p.census, 1410.0) for p in RecommenderTraining().phases())
        assert 0.2 < total < 60.0

    def test_base_class_requires_phases(self):
        class Broken(PhasedWorkload):
            name = "broken"
            default_size = 1

        with pytest.raises(NotImplementedError):
            Broken().census()


class _SinglePhase(PhasedWorkload):
    """One-phase wrapper: phased prediction should collapse to run_online."""

    name = "single-phase"
    default_size = 1

    def __init__(self, census: KernelCensus) -> None:
        self._census = census

    def phases(self, size=None):
        return [Phase("only", self._census)]


class _NoPhases(PhasedWorkload):
    name = "no-phases"
    default_size = 1

    def phases(self, size=None):
        return []


class TestPhasedComposition:
    """run_online_phased composes per-phase curves exactly (satellite tests).

    All comparisons run on noise-free devices so per-phase measurements
    are reproducible and the composition law can be checked bitwise.
    """

    @pytest.fixture()
    def quiet_pipe(self, tiny_models):
        from tests.golden.tiny_pipeline import MAX_SAMPLES_PER_RUN, make_tiny_pipeline

        device = SimulatedGPU(
            GA100, seed=0, noise=NoiseModel.disabled(), max_samples_per_run=MAX_SAMPLES_PER_RUN
        )
        return make_tiny_pipeline(tiny_models, device=device)

    def test_composite_curves_are_sums_over_phases(self, quiet_pipe, tiny_models):
        from repro.core.dataset import measure_census_at_max

        workload = RecommenderTraining()
        result = quiet_pipe.run_online_phased(workload)

        # Rebuild the expected composition phase by phase, in phase order,
        # with the same accumulation (+=) the pipeline uses.
        from tests.golden.tiny_pipeline import MAX_SAMPLES_PER_RUN, make_tiny_pipeline

        ref = make_tiny_pipeline(
            tiny_models,
            device=SimulatedGPU(
                GA100, seed=0, noise=NoiseModel.disabled(), max_samples_per_run=MAX_SAMPLES_PER_RUN
            ),
        )
        freqs = ref.device.dvfs.usable_array()
        scale = ref.device.arch.tdp_watts
        total_time = np.zeros(freqs.size)
        total_energy = np.zeros(freqs.size)
        for p in workload.phases():
            fv, _, t_max = measure_census_at_max(
                ref.device, p.census, name=f"{workload.name}:{p.name}"
            )
            p_curve = ref.power_model.predict_power(fv, freqs, target_power_scale_w=scale)
            t_curve = ref.time_model.predict_time(fv, freqs, time_at_max_s=t_max)
            total_time += t_curve
            total_energy += p_curve * t_curve

        assert np.array_equal(result.time_s, total_time)
        assert np.array_equal(result.energy_j, total_energy)
        assert np.array_equal(result.power_w, total_energy / total_time)

    def test_single_phase_matches_run_online(self, quiet_pipe, compute_census):
        """With one phase, composition must collapse to the plain path."""
        workload = _SinglePhase(compute_census)
        plain = quiet_pipe.run_online(workload)
        phased = quiet_pipe.run_online_phased(workload)
        assert np.array_equal(phased.time_s, plain.time_s)
        assert np.array_equal(phased.energy_j, plain.energy_j)
        for name in plain.selections:
            assert phased.selection(name).freq_mhz == plain.selection(name).freq_mhz
            assert phased.selection(name).index == plain.selection(name).index
            assert phased.selection(name).energy_saving == plain.selection(name).energy_saving
        # Scalar summaries go through a weighted mean (x*t/t), which is a
        # no-op only up to rounding — compare tightly, not bitwise.
        assert phased.measured_time_at_max_s == pytest.approx(plain.measured_time_at_max_s)
        assert phased.measured_power_at_max_w == pytest.approx(plain.measured_power_at_max_w)
        assert phased.features.fp_active == pytest.approx(plain.features.fp_active)
        assert phased.features.dram_active == pytest.approx(plain.features.dram_active)

    def test_zero_phases_rejected(self, quiet_pipe):
        with pytest.raises(ValueError, match="reports no phases"):
            quiet_pipe.run_online_phased(_NoPhases())


class TestPhasedPipeline:
    def test_phased_online_runs(self, fast_ctx):
        pipe = fast_ctx.pipeline("GA100")
        result = pipe.run_online_phased(RecommenderTraining())
        assert result.freqs_mhz.size == 61
        assert np.all(result.power_w > 0)
        assert np.all(result.time_s > 0)
        assert "ED2P" in result.selections

    def test_phased_time_is_sum_of_measurable_phases(self, fast_ctx):
        pipe = fast_ctx.pipeline("GA100")
        result = pipe.run_online_phased(RecommenderTraining())
        # At f_max the composite prediction equals the measured total.
        assert result.time_s[-1] == pytest.approx(result.measured_time_at_max_s, rel=0.15)

    def test_unfitted_pipeline_rejected(self):
        from repro.core import FrequencySelectionPipeline

        pipe = FrequencySelectionPipeline(SimulatedGPU(GA100, seed=0))
        with pytest.raises(RuntimeError, match="fit_offline"):
            pipe.run_online_phased(RecommenderTraining())
