"""Activation tests: values, derivatives (numerical check), registry."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import (
    ELU,
    SELU,
    LeakyReLU,
    Linear,
    ReLU,
    Sigmoid,
    Softmax,
    Softplus,
    Softsign,
    Tanh,
    get_activation,
)

ELEMENTWISE = [Linear(), ReLU(), LeakyReLU(), ELU(), SELU(), Sigmoid(), Tanh(), Softplus(), Softsign()]


@pytest.mark.parametrize("act", ELEMENTWISE, ids=lambda a: a.name)
class TestNumericalDerivative:
    def test_derivative_matches_finite_difference(self, act):
        # Avoid the kink at exactly 0 for the piecewise activations.
        x = np.array([-3.0, -1.2, -0.4, 0.3, 0.9, 2.5])
        h = 1e-6
        numeric = (act(x + h) - act(x - h)) / (2 * h)
        assert np.allclose(act.derivative(x), numeric, atol=1e-5)

    def test_shapes_preserved(self, act):
        x = np.random.default_rng(0).standard_normal((4, 5))
        assert act(x).shape == (4, 5)
        assert act.derivative(x).shape == (4, 5)


class TestSELU:
    def test_paper_constants(self):
        """Paper Eq. 2 states alpha=1.67326324, scale=1.05070098."""
        assert SELU.ALPHA == pytest.approx(1.67326324)
        assert SELU.SCALE == pytest.approx(1.05070098)

    def test_positive_branch_linear(self):
        x = np.array([1.0, 2.0])
        assert np.allclose(SELU()(x), SELU.SCALE * x)

    def test_negative_branch_saturates(self):
        assert SELU()(np.array([-50.0]))[0] == pytest.approx(-SELU.SCALE * SELU.ALPHA, rel=1e-6)

    def test_self_normalizing_property(self):
        """SELU approximately preserves zero mean / unit variance."""
        rng = np.random.default_rng(0)
        x = rng.standard_normal(200_000)
        y = SELU()(x)
        assert abs(y.mean()) < 0.05
        assert abs(y.std() - 1.0) < 0.1


class TestIndividualValues:
    def test_relu_clips(self):
        assert np.array_equal(ReLU()(np.array([-1.0, 2.0])), np.array([0.0, 2.0]))

    def test_leaky_relu_slope(self):
        assert LeakyReLU(0.1)(np.array([-10.0]))[0] == pytest.approx(-1.0)

    def test_leaky_relu_negative_slope_rejected(self):
        with pytest.raises(ValueError, match="negative_slope"):
            LeakyReLU(-0.1)

    def test_sigmoid_bounds_and_midpoint(self):
        s = Sigmoid()
        assert s(np.array([0.0]))[0] == pytest.approx(0.5)
        assert s(np.array([100.0]))[0] == pytest.approx(1.0)
        assert s(np.array([-100.0]))[0] == pytest.approx(0.0)

    def test_softplus_stable_at_extremes(self):
        sp = Softplus()
        assert np.isfinite(sp(np.array([1000.0]))[0])
        assert sp(np.array([1000.0]))[0] == pytest.approx(1000.0)

    def test_softsign_bounds(self):
        out = Softsign()(np.array([-1e9, 1e9]))
        assert -1.0 <= out[0] < -0.99
        assert 0.99 < out[1] <= 1.0

    def test_softmax_rows_sum_to_one(self):
        x = np.random.default_rng(0).standard_normal((3, 7))
        rows = Softmax()(x).sum(axis=-1)
        assert np.allclose(rows, 1.0)

    def test_softmax_shift_invariant(self):
        x = np.random.default_rng(0).standard_normal((2, 5))
        sm = Softmax()
        assert np.allclose(sm(x), sm(x + 100.0))


class TestRegistry:
    def test_all_nine_paper_activations_available(self):
        """Paper Section 4.3 sweeps these nine."""
        for name in ("relu", "elu", "leaky_relu", "selu", "sigmoid", "tanh", "softmax", "softplus", "softsign"):
            assert get_activation(name).name == name

    def test_case_insensitive(self):
        assert get_activation("SELU").name == "selu"

    def test_unknown_raises(self):
        with pytest.raises(KeyError, match="known"):
            get_activation("gelu")


@given(x=st.floats(min_value=-20, max_value=20, allow_nan=False))
@settings(max_examples=80, deadline=None)
def test_monotone_activations(x):
    """ReLU-family and sigmoid/tanh are nondecreasing."""
    eps = 1e-3
    for act in (ReLU(), LeakyReLU(), ELU(), SELU(), Sigmoid(), Tanh(), Softplus(), Softsign()):
        lo = act(np.array([x]))[0]
        hi = act(np.array([x + eps]))[0]
        assert hi >= lo - 1e-12, act.name
