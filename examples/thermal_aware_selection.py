"""Thermal throttling makes DVFS selection *more* attractive.

The paper ran with exclusive node access and per-run settling, so
thermals stay implicit.  Real sustained workloads are different: a board
parked at the maximum clock heats through its thermal time constant and
hardware-throttles, losing the performance that justified the high clock
in the first place.  The ED2P-selected clock draws far less power, stays
under the thermal limit, and therefore delivers *predictable*
performance.

This example runs a sustained compute campaign twice on a thermally
modelled A100 — once at the boost clock, once at the ED2P clock — and
compares delivered throughput, temperature, and energy.

Run:  python examples/thermal_aware_selection.py
"""

import numpy as np

from repro.core import ED2P, select_optimal_frequency
from repro.gpusim import GA100, NoiseModel, SimulatedGPU, ThermalModel
from repro.workloads import get_workload


def sustained_campaign(device: SimulatedGPU, census, clock_mhz: float, jobs: int = 12):
    """Back-to-back jobs at one clock; returns (total time, energy, peak T)."""
    device.reset_clocks()
    device.set_sm_clock(clock_mhz)
    total_time = 0.0
    total_energy = 0.0
    peak_t = device.temperature_c
    throttled_jobs = 0
    for _ in range(jobs):
        record = device.run(census)
        total_time += record.exec_time_s
        total_energy += record.energy_j
        peak_t = max(peak_t, record.final_temperature_c)
        throttled_jobs += int(record.throttled)
    return total_time, total_energy, peak_t, throttled_jobs


def main() -> None:
    census = get_workload("bert").census(300)  # a long fine-tuning batch

    # Pick the ED2P clock from the noise-free curves (the paper's method
    # would predict these; here we focus on the thermal story).
    probe = SimulatedGPU(GA100, seed=0, noise=NoiseModel.disabled())
    freqs = probe.dvfs.usable_array()
    power = np.array([probe.true_power(census, f) for f in freqs])
    time = np.array([probe.true_time(census, f) for f in freqs])
    selection = select_optimal_frequency(freqs, power * time, time, objective=ED2P)
    print(f"ED2P-selected clock: {selection.freq_mhz:.0f} MHz "
          f"(boost clock is 1410 MHz)")

    for label, clock in (("boost clock", 1410.0), ("ED2P clock", selection.freq_mhz)):
        device = SimulatedGPU(
            GA100, seed=1, noise=NoiseModel.disabled(), thermal=ThermalModel()
        )
        t, e, peak, throttled = sustained_campaign(device, census, clock)
        print(f"\n{label} ({clock:.0f} MHz), 12 back-to-back jobs:")
        print(f"  wall time : {t:8.1f} s ({throttled} jobs throttled)")
        print(f"  energy    : {e / 1e3:8.1f} kJ")
        print(f"  peak temp : {peak:8.1f} C "
              f"({'at the throttle limit' if peak >= device.thermal.throttle_limit_c - 0.5 else 'thermally safe'})")


if __name__ == "__main__":
    main()
