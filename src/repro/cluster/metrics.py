"""Schedule accounting: makespan, energy, power series."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.job import JobRecord

__all__ = ["ClusterReport", "summarize", "power_series"]


@dataclass(frozen=True)
class ClusterReport:
    """Aggregate metrics of one completed schedule."""

    policy: str
    n_jobs: int
    makespan_s: float
    total_energy_j: float
    mean_job_wait_s: float
    #: Time-averaged busy power across the schedule (total energy over
    #: makespan; idle draw excluded — it is policy-independent).
    avg_power_w: float
    peak_power_w: float

    def energy_saving_vs(self, baseline: "ClusterReport") -> float:
        """Fractional energy saving relative to a baseline report."""
        if baseline.total_energy_j <= 0:
            raise ValueError("baseline has no energy")
        return 1.0 - self.total_energy_j / baseline.total_energy_j

    def makespan_change_vs(self, baseline: "ClusterReport") -> float:
        """Fractional makespan change (positive = slower) vs a baseline."""
        if baseline.makespan_s <= 0:
            raise ValueError("baseline has no makespan")
        return self.makespan_s / baseline.makespan_s - 1.0


def power_series(records: list[JobRecord], *, resolution_s: float = 1.0) -> tuple[np.ndarray, np.ndarray]:
    """(timestamps, aggregate busy power) sampled on a fixed grid.

    Each job contributes its mean power over [start, end); the series is
    what a facility meter would see from the GPU partition (minus idle).
    """
    if not records:
        raise ValueError("no records")
    if resolution_s <= 0:
        raise ValueError("resolution_s must be positive")
    end = max(r.end_s for r in records)
    t = np.arange(0.0, end + resolution_s, resolution_s)
    p = np.zeros_like(t)
    for r in records:
        mask = (t >= r.start_s) & (t < r.end_s)
        p[mask] += r.mean_power_w
    return t, p


def summarize(policy_name: str, records: list[JobRecord]) -> ClusterReport:
    """Build the aggregate report for one schedule."""
    if not records:
        raise ValueError("no records to summarise")
    makespan = max(r.end_s for r in records)
    energy = sum(r.energy_j for r in records)
    _, series = power_series(records)
    return ClusterReport(
        policy=policy_name,
        n_jobs=len(records),
        makespan_s=makespan,
        total_energy_j=energy,
        mean_job_wait_s=float(np.mean([r.wait_s for r in records])),
        avg_power_w=energy / makespan if makespan > 0 else 0.0,
        peak_power_w=float(series.max()),
    )
