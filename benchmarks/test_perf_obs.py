"""Tracer-overhead benchmark on the serving hot path.

Times the hot-mix serving flush (8 distinct applications x 8 repeats,
the realistic datacenter scenario from ``test_perf_serving.py``) three
ways — instrumentation disabled, ring-buffer tracer enabled, and JSONL
tracer enabled — and records the slowdown ratios in ``BENCH_obs.json``
at the repo root.

The acceptance bar is the ISSUE's gate: tracing *enabled* must cost at
most 10 % of the untraced flush.  The disabled path has its own, far
stricter bar in ``tests/obs/test_noop_overhead.py`` (< 5 % — in
practice it is nanoseconds per span).
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parent.parent
if str(_REPO_ROOT) not in sys.path:  # tests.golden holds the tiny-pipeline config
    sys.path.insert(0, str(_REPO_ROOT))

import numpy as np
import pytest

from repro import obs
from repro.core.dataset import FeatureVector
from repro.serving import SelectionRequest, SelectionService

from tests.golden.tiny_pipeline import make_tiny_pipeline, train_tiny_models

BENCH_PATH = _REPO_ROOT / "BENCH_obs.json"

N_REQUESTS = 64
N_DISTINCT = 8
#: The ISSUE's gate: tracing enabled slows the flush by at most this factor.
MAX_TRACED_SLOWDOWN = 1.10


@pytest.fixture(scope="module")
def pipeline():
    return make_tiny_pipeline(train_tiny_models())


def _hot_requests() -> list[SelectionRequest]:
    rng = np.random.default_rng(42)
    distinct = []
    for i in range(N_DISTINCT):
        fv = FeatureVector(
            float(rng.uniform(0.05, 0.95)), float(rng.uniform(0.05, 0.95)), 1410.0
        )
        distinct.append(
            SelectionRequest.from_features(fv, float(rng.uniform(0.5, 20.0)), name=f"app-{i}")
        )
    return (distinct * (N_REQUESTS // N_DISTINCT))[:N_REQUESTS]


def _best_of(fn, repeats: int = 7) -> float:
    best = None
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return best


def _measure(pipeline, tmp_path_factory) -> dict:
    requests = _hot_requests()

    def flush():
        # Fresh service per run: the DNN forward must actually execute.
        SelectionService(pipeline, max_batch_size=N_REQUESTS).select_many(requests)

    assert not obs.is_enabled()
    disabled_s = _best_of(flush)

    obs.configure()  # ring-buffer sink only
    try:
        ring_s = _best_of(flush)
    finally:
        obs.disable()

    trace_path = tmp_path_factory.mktemp("obs_bench") / "trace.jsonl"
    obs.configure(trace_path)
    try:
        jsonl_s = _best_of(flush)
    finally:
        obs.disable()

    def row(seconds: float) -> dict:
        return {
            "seconds": round(seconds, 6),
            "selections_per_s": round(N_REQUESTS / seconds, 1),
            "slowdown_vs_disabled": round(seconds / disabled_s, 4),
        }

    return {
        "disabled": row(disabled_s),
        "ring": row(ring_s),
        "jsonl": row(jsonl_s),
    }


def test_tracer_overhead_tracked(pipeline, tmp_path_factory):
    """Record the overhead trajectory and enforce the <= 10 % gate."""
    previous = json.loads(BENCH_PATH.read_text()) if BENCH_PATH.exists() else {}
    scenarios = _measure(pipeline, tmp_path_factory)
    current = scenarios["jsonl"]

    best = previous.get("best")
    if best is None or current["slowdown_vs_disabled"] < best["slowdown_vs_disabled"]:
        best = current

    payload = {
        "bench": "obs-tracer-overhead",
        "config": {
            "n_requests": N_REQUESTS,
            "n_distinct": N_DISTINCT,
            "scenario": "hot-mix serving flush",
            "max_traced_slowdown": MAX_TRACED_SLOWDOWN,
        },
        "pre_pr_baseline": previous.get("pre_pr_baseline") or scenarios["disabled"],
        "scenarios": scenarios,
        "best": best,
        "current": current,
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    for name in ("ring", "jsonl"):
        slowdown = scenarios[name]["slowdown_vs_disabled"]
        assert slowdown <= MAX_TRACED_SLOWDOWN, (
            f"{name} tracing slows the hot flush {slowdown:.3f}x — above the "
            f"{MAX_TRACED_SLOWDOWN:.2f}x gate ({scenarios['disabled']['seconds'] * 1e3:.2f} ms "
            f"untraced vs {scenarios[name]['seconds'] * 1e3:.2f} ms traced)"
        )


def test_traced_flush_emits_expected_span_families(pipeline):
    """The timed scenario really exercises the instrumentation."""
    tracer = obs.configure()
    try:
        SelectionService(pipeline, max_batch_size=N_REQUESTS).select_many(_hot_requests())
        names = {e["name"] for e in tracer.events()}
    finally:
        obs.disable()
    assert {"serving.flush", "serving.measure", "serving.lookup", "serving.predict", "serving.select"} <= names
