"""Multi-phase (trace) workloads.

Real applications alternate phases with different computational
characters — a recommender interleaves memory-bound embedding lookups
with compute-bound MLP updates; a climate pipeline alternates FFTs with
I/O.  The paper's method profiles the *whole run* and averages the
features, which places a bimodal application at a synthetic operating
point no real kernel occupies.  Phase-aware prediction (see
``repro.core.pipeline.FrequencySelectionPipeline.run_online_phased``)
predicts each phase separately and composes the curves.

A :class:`PhasedWorkload` describes its phases; its whole-run census is
the physically correct merge (extensive quantities sum, intensive ones
average weighted by each phase's share of the wall time at the default
clock).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpusim.kernel import KernelCensus
from repro.workloads.base import Workload, WorkloadCategory

__all__ = ["Phase", "merge_censuses", "PhasedWorkload", "RecommenderTraining"]


@dataclass(frozen=True)
class Phase:
    """One phase of a multi-phase application."""

    name: str
    census: KernelCensus
    #: This phase's approximate share of wall time at the default clock,
    #: used to weight intensive properties when merging.  Shares need not
    #: sum to 1; they are normalised.
    duration_weight: float = 1.0

    def __post_init__(self) -> None:
        if self.duration_weight <= 0:
            raise ValueError("duration_weight must be positive")


def merge_censuses(phases: list[Phase]) -> KernelCensus:
    """Whole-run census from per-phase censuses.

    FLOPs and byte counts sum; occupancy, efficiencies, and the timing
    fractions are duration-weighted means — what a whole-run profile
    (the paper's acquisition) would report for this application.
    """
    if not phases:
        raise ValueError("need at least one phase")
    total_w = sum(p.duration_weight for p in phases)

    def wmean(attr: str) -> float:
        return sum(getattr(p.census, attr) * p.duration_weight for p in phases) / total_w

    return KernelCensus(
        flops_fp64=sum(p.census.flops_fp64 for p in phases),
        flops_fp32=sum(p.census.flops_fp32 for p in phases),
        dram_bytes=sum(p.census.dram_bytes for p in phases),
        pcie_tx_bytes=sum(p.census.pcie_tx_bytes for p in phases),
        pcie_rx_bytes=sum(p.census.pcie_rx_bytes for p in phases),
        occupancy=wmean("occupancy"),
        compute_efficiency=wmean("compute_efficiency"),
        memory_efficiency=wmean("memory_efficiency"),
        serial_fraction=wmean("serial_fraction"),
        compute_latency_fraction=wmean("compute_latency_fraction"),
        concurrent_host_fraction=wmean("concurrent_host_fraction"),
    )


class PhasedWorkload(Workload):
    """Workload composed of named phases.

    Subclasses implement :meth:`phases`; the whole-run census is derived
    by :func:`merge_censuses` so monolithic (paper-style) profiling still
    works on the same object.
    """

    def phases(self, size: int | None = None) -> list[Phase]:
        """Per-phase censuses at ``size``."""
        raise NotImplementedError

    def census(self, size: int | None = None) -> KernelCensus:
        return merge_censuses(self.phases(size))


class RecommenderTraining(PhasedWorkload):
    """DLRM-style recommender: embedding gathers + dense MLP updates.

    ``size`` is the number of training steps.  Per step:

    * **embedding phase** — sparse gathers over huge tables: almost no
      FLOPs, heavy irregular DRAM traffic at poor efficiency;
    * **mlp phase** — batched dense GEMMs: compute-bound.

    The two phases sit at opposite corners of the (fp, dram) plane, so
    the merged profile is the worst case for whole-run feature averaging.
    """

    name = "recommender"
    category = WorkloadCategory.REAL_APP
    default_size = 2000
    min_size = 10

    _BATCH = 4096
    #: 80 sparse features x 64-dim embeddings gathered per sample.
    _EMBED_BYTES_PER_STEP = _BATCH * 80.0 * 64.0 * 4.0 * 6.0  # gathers + grads
    #: Three MLP layers of 1024 units, fwd + bwd.
    _MLP_FLOPS_PER_STEP = 6.0 * _BATCH * (512 * 1024 + 1024 * 1024 + 1024 * 256)

    def phases(self, size: int | None = None) -> list[Phase]:
        steps = float(self.resolve_size(size))
        embedding = KernelCensus(
            flops_fp32=0.05 * self._EMBED_BYTES_PER_STEP * steps,
            dram_bytes=self._EMBED_BYTES_PER_STEP * steps * 14.0,
            pcie_rx_bytes=self._BATCH * 80.0 * 4.0 * steps,
            pcie_tx_bytes=1e6,
            occupancy=0.55,
            compute_efficiency=0.35,
            memory_efficiency=0.40,
            compute_latency_fraction=0.30,
            serial_fraction=0.04,
        )
        mlp = KernelCensus(
            flops_fp32=self._MLP_FLOPS_PER_STEP * steps * 6.0,
            dram_bytes=self._MLP_FLOPS_PER_STEP * steps * 0.05,
            pcie_rx_bytes=1e6,
            pcie_tx_bytes=self._BATCH * 4.0 * steps,
            occupancy=0.88,
            compute_efficiency=0.82,
            memory_efficiency=0.75,
            compute_latency_fraction=0.40,
            serial_fraction=0.03,
        )
        # Weight by rough wall-time share at the default clock: the
        # embedding phase dominates DLRM steps.
        return [
            Phase("embedding", embedding, duration_weight=0.55),
            Phase("mlp", mlp, duration_weight=0.45),
        ]
