"""Uncertainty-aware frequency selection with a deep ensemble.

The paper's Table 5 shows the failure mode of point predictions: the
predicted-ED2P clock for ResNet50 realised a 34% slowdown the model did
not anticipate.  A deep ensemble (five differently-seeded copies of the
paper's DNNs) exposes *how sure* the model is at each clock; the
conservative selector only drops the clock where even the pessimistic
time estimate honours the performance budget.

Run:  python examples/uncertainty_selection.py
"""

import numpy as np

from repro.core import (
    EDP,
    FrequencySelectionPipeline,
    select_optimal_frequency,
)
from repro.core.dataset import features_at_max
from repro.core.uncertainty import EnsembleModel, select_conservative
from repro.gpusim import GA100, SimulatedGPU
from repro.workloads import get_workload, training_workloads

PERF_BUDGET = 0.05  # tolerate at most 5% slowdown


def main() -> None:
    device = SimulatedGPU(GA100, seed=21, max_samples_per_run=8)

    print("collecting the training sweep once...")
    pipeline = FrequencySelectionPipeline(device, seed=0)
    dataset = pipeline.fit_offline(training_workloads(), runs_per_config=1)

    print("training a 5-member deep ensemble on the same dataset...")
    ensemble = EnsembleModel(n_members=5, reference_power_w=GA100.tdp_watts, seed=10)
    ensemble.fit(dataset)

    freqs = device.dvfs.usable_array()
    print(f"\n{'app':10s} {'point pick':>10s} {'conserv.':>9s} {'max time sigma':>14s}")
    for name in ("resnet50", "lammps", "lstm", "bert"):
        workload = get_workload(name)
        fv, _p, t_max = features_at_max(device, workload)

        power = ensemble.predict_power(fv, freqs, target_power_scale_w=GA100.tdp_watts)
        time = ensemble.predict_time(fv, freqs, time_at_max_s=t_max)

        point = select_optimal_frequency(
            freqs, power.mean * time.mean, time.mean, objective=EDP, threshold=PERF_BUDGET
        )
        conservative = select_conservative(
            power, time, objective=EDP, threshold=PERF_BUDGET, z=1.64
        )
        print(
            f"{name:10s} {point.freq_mhz:7.0f}MHz {conservative.freq_mhz:6.0f}MHz "
            f"{100 * float(np.max(time.relative_std)):13.1f}%"
        )

    print("\nconservative picks are at or above the point picks exactly where")
    print("the ensemble disagrees — uncertainty buys back the paper's")
    print("ResNet50-style degradation surprises at a small energy cost.")


if __name__ == "__main__":
    main()
