"""Multi-learner baseline regressors (paper Fig. 11).

The paper compares its DNN against Random Forest (RFR), eXtreme Gradient
Boosting (XGBR), Support Vector (SVR), and Multiple Linear (MLR)
regressors.  scikit-learn/XGBoost are not available offline, so each
learner is implemented from scratch on NumPy:

* :class:`MultipleLinearRegression` — ordinary least squares,
* :class:`DecisionTreeRegressor` — CART with vectorized split search,
* :class:`RandomForestRegressor` — bootstrap + feature-subsampled trees,
* :class:`GradientBoostingRegressor` — XGBoost-style shrinkage boosting
  with L2 leaf regularisation,
* :class:`SVR` — epsilon-insensitive support vector regression trained by
  SMO with RBF/linear kernels.

All share the fit/predict contract and seeded determinism.
"""

from repro.baselines.forest import RandomForestRegressor
from repro.baselines.gbm import GradientBoostingRegressor
from repro.baselines.linear import MultipleLinearRegression
from repro.baselines.svr import SVR
from repro.baselines.tree import DecisionTreeRegressor

__all__ = [
    "MultipleLinearRegression",
    "DecisionTreeRegressor",
    "RandomForestRegressor",
    "GradientBoostingRegressor",
    "SVR",
]
