"""Ablation runners execute end-to-end on the fast profile."""

import pytest

from repro.experiments.ablations import (
    PAPER_ACTIVATIONS,
    PAPER_OPTIMIZERS,
    render_ablation,
    run_architecture_ablation,
    run_feature_count_ablation,
    run_optimizer_ablation,
    run_time_target_ablation,
)


class TestOptimizerAblation:
    @pytest.fixture(scope="class")
    def rows(self, fast_ctx, fast_suite):
        return run_optimizer_ablation(fast_ctx, suite=fast_suite, epochs=5)

    def test_all_paper_optimizers(self, rows):
        assert {r.variant for r in rows} == set(PAPER_OPTIMIZERS)

    def test_scores_in_range(self, rows):
        for r in rows:
            assert 0.0 <= r.eval_accuracy <= 100.0
            assert r.train_mape >= 0.0

    def test_render(self, rows):
        out = render_ablation("Ablation: optimizers", rows)
        assert "rmsprop" in out


class TestFeatureCountAblation:
    @pytest.fixture(scope="class")
    def rows(self, fast_ctx):
        return run_feature_count_ablation(fast_ctx, epochs=10)

    def test_five_ks(self, rows):
        assert [r.variant.split(":")[0] for r in rows] == [f"top-{k}" for k in (1, 2, 3, 4, 5)]

    def test_variants_name_their_features(self, rows):
        assert "sm_app_clock" in rows[0].variant  # strongest feature first


class TestTimeTargetAblation:
    @pytest.fixture(scope="class")
    def rows(self, fast_ctx, fast_suite):
        return run_time_target_ablation(fast_ctx, suite=fast_suite)

    def test_relative_at_least_competitive(self, rows):
        accs = {r.variant: r.eval_accuracy for r in rows}
        assert accs["relative"] >= accs["absolute"] - 2.0


class TestArchitectureAblation:
    def test_runs_with_reduced_epochs(self, fast_ctx, fast_suite):
        rows = run_architecture_ablation(fast_ctx, suite=fast_suite, epochs=3)
        assert len(rows) == 6
        assert any(r.variant == "64x64x64" for r in rows)


class TestActivationList:
    def test_nine_paper_activations(self):
        assert len(PAPER_ACTIVATIONS) == 9
        assert "selu" in PAPER_ACTIVATIONS
