"""Clock-controller tests."""

from repro.telemetry import ClockController


class TestControl:
    def test_set_applies_to_device(self, ga100):
        ctl = ClockController(ga100)
        actual = ctl.set_sm_clock(750.0)
        assert actual == 750.0
        assert ga100.current_sm_clock == 750.0

    def test_set_snaps_and_logs_snapped(self, ga100):
        ctl = ClockController(ga100)
        actual = ctl.set_sm_clock(751.0)
        assert actual == 750.0
        assert ctl.history[-1] == ("sm", 750.0)

    def test_history_accumulates(self, ga100):
        ctl = ClockController(ga100)
        ctl.set_sm_clock(600.0)
        ctl.set_sm_clock(900.0)
        ctl.reset()
        assert ctl.history == [("sm", 600.0), ("sm", 900.0), ("sm", 1410.0), ("mem", 1597.0)]

    def test_memory_clock_control(self, ga100):
        """The control module also drives the memory clock (S4.1)."""
        ctl = ClockController(ga100)
        actual = ctl.set_mem_clock(500.0)
        assert actual == 510.0  # snapped to the idle state
        assert ctl.current_mem_clock == 510.0
        ctl.reset()
        assert ctl.current_mem_clock == 1597.0

    def test_reset_restores_default(self, ga100):
        ctl = ClockController(ga100)
        ctl.set_sm_clock(510.0)
        assert ctl.reset() == 1410.0
        assert ga100.current_sm_clock == 1410.0

    def test_current_clock_property(self, ga100):
        ctl = ClockController(ga100)
        ctl.set_sm_clock(1005.0)
        assert ctl.current_clock == 1005.0

    def test_sweep_snaps_without_applying(self, ga100):
        ctl = ClockController(ga100)
        snapped = ctl.sweep([511.0, 752.0, 2000.0])
        assert snapped == [510.0, 750.0, 1410.0]
        assert ga100.current_sm_clock == 1410.0  # untouched
        assert ctl.history == []
