"""Figure 4: impact of DVFS on fp_active / dram_active.

Sweeps DGEMM and STREAM (at their maximum/default input sizes) across
the clock grid and records the two selected activity features at each
clock.  Expected shape: fp activity is almost flat; memory activity
varies "to some extent" but stays bounded — the invariance that lets the
online phase collect features only at the default clock.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.context import ExperimentContext
from repro.experiments.report import render_series

__all__ = ["ActivityVsClock", "Fig4Result", "run_fig4", "render_fig4", "relative_spread"]


@dataclass(frozen=True)
class ActivityVsClock:
    """Activity features measured at every clock for one workload."""

    workload: str
    freqs_mhz: np.ndarray
    fp_active: np.ndarray
    dram_active: np.ndarray


@dataclass(frozen=True)
class Fig4Result:
    """Both micro-benchmarks' activity-vs-clock curves."""

    dgemm: ActivityVsClock
    stream: ActivityVsClock


def relative_spread(values: np.ndarray) -> float:
    """(max - min) / mean — the invariance measure the benches assert on."""
    values = np.asarray(values, dtype=float)
    mean = values.mean()
    if mean == 0.0:  # repro: noqa[NUM001] — exact divide-by-zero guard
        return 0.0
    return float(np.ptp(values) / mean)


def _activity_sweep(ctx: ExperimentContext, name: str) -> ActivityVsClock:
    device = ctx.device("GA100")
    workload = ctx.registry.get(name)
    census = workload.census()
    freqs = device.dvfs.usable_array()
    fp = np.empty(freqs.size)
    dram = np.empty(freqs.size)
    for i, f in enumerate(freqs):
        metrics = device.run_at(census, f, workload_name=name).metrics()
        fp[i] = metrics["fp64_active"] + metrics["fp32_active"]
        dram[i] = metrics["dram_active"]
    return ActivityVsClock(workload=name, freqs_mhz=freqs, fp_active=fp, dram_active=dram)


def run_fig4(ctx: ExperimentContext) -> Fig4Result:
    """Measure activity-vs-clock for both micro-benchmarks."""
    return Fig4Result(
        dgemm=_activity_sweep(ctx, "dgemm"),
        stream=_activity_sweep(ctx, "stream"),
    )


def render_fig4(result: Fig4Result) -> str:
    """Series plus the invariance spreads."""
    lines = ["Figure 4 - impact of DVFS on fp_active and dram_active"]
    for sweep in (result.dgemm, result.stream):
        lines.append(render_series(f"{sweep.workload} fp_active", sweep.freqs_mhz, sweep.fp_active))
        lines.append(render_series(f"{sweep.workload} dram_active", sweep.freqs_mhz, sweep.dram_active))
        lines.append(
            f"{sweep.workload}: fp spread {100 * relative_spread(sweep.fp_active):.1f}%, "
            f"dram spread {100 * relative_spread(sweep.dram_active):.1f}%"
        )
    return "\n".join(lines)
