"""Training-loop tests: splits, histories, early stopping, validation."""

import numpy as np
import pytest

from repro.nn import FeedForwardNetwork, TrainConfig, train


def toy_problem(n=400, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.uniform(-1, 1, size=(n, 3))
    y = x[:, 0] ** 2 + 0.5 * x[:, 1] - 0.2 * x[:, 2]
    return x, y


class TestBasicTraining:
    def test_history_lengths(self):
        x, y = toy_problem()
        net = FeedForwardNetwork.build(3, (16,), 1, seed=0)
        hist = train(net, x, y, config=TrainConfig(epochs=7), seed=0)
        assert hist.epochs_run == 7
        assert len(hist.train_loss) == 7
        assert len(hist.val_loss) == 7

    def test_loss_decreases(self):
        x, y = toy_problem()
        net = FeedForwardNetwork.build(3, (32, 32), 1, seed=0)
        hist = train(net, x, y, config=TrainConfig(epochs=40), seed=0)
        assert hist.train_loss[-1] < 0.3 * hist.train_loss[0]

    def test_seeded_training_reproducible(self):
        x, y = toy_problem()
        losses = []
        for _ in range(2):
            net = FeedForwardNetwork.build(3, (8,), 1, seed=3)
            hist = train(net, x, y, config=TrainConfig(epochs=5), seed=9)
            losses.append(hist.train_loss)
        assert losses[0] == losses[1]

    def test_one_dim_targets_accepted(self):
        x, y = toy_problem()
        net = FeedForwardNetwork.build(3, (8,), 1, seed=0)
        hist = train(net, x, y.reshape(-1), config=TrainConfig(epochs=2), seed=0)
        assert hist.epochs_run == 2

    def test_string_optimizer_and_loss(self):
        x, y = toy_problem(100)
        net = FeedForwardNetwork.build(3, (8,), 1, seed=0)
        hist = train(net, x, y, optimizer="adam", loss="mae", config=TrainConfig(epochs=2), seed=0)
        assert hist.epochs_run == 2


class TestValidationSplit:
    def test_no_split_means_no_val_history(self):
        x, y = toy_problem(100)
        net = FeedForwardNetwork.build(3, (8,), 1, seed=0)
        hist = train(net, x, y, config=TrainConfig(epochs=3, validation_split=0.0), seed=0)
        assert hist.val_loss == []
        assert hist.best_val_loss == float("inf")

    def test_paper_default_split_is_80_20(self):
        assert TrainConfig().validation_split == 0.2

    def test_paper_default_batch_size_is_64(self):
        assert TrainConfig().batch_size == 64


class TestEarlyStopping:
    def test_stops_on_plateau(self):
        x, y = toy_problem()
        net = FeedForwardNetwork.build(3, (8,), 1, seed=0)
        config = TrainConfig(epochs=200, early_stop_patience=3)
        hist = train(net, x, y, config=config, seed=0)
        assert hist.stopped_early
        assert hist.epochs_run < 200

    def test_no_early_stop_without_patience(self):
        x, y = toy_problem(100)
        net = FeedForwardNetwork.build(3, (8,), 1, seed=0)
        hist = train(net, x, y, config=TrainConfig(epochs=10), seed=0)
        assert not hist.stopped_early


class TestValidationErrors:
    def test_non_2d_x_rejected(self):
        net = FeedForwardNetwork.build(3, (4,), 1, seed=0)
        with pytest.raises(ValueError, match="2-D"):
            train(net, np.zeros(3), np.zeros(1))

    def test_length_mismatch_rejected(self):
        net = FeedForwardNetwork.build(3, (4,), 1, seed=0)
        with pytest.raises(ValueError, match="samples"):
            train(net, np.zeros((5, 3)), np.zeros(4))

    def test_too_few_samples_rejected(self):
        net = FeedForwardNetwork.build(3, (4,), 1, seed=0)
        with pytest.raises(ValueError, match="at least 2"):
            train(net, np.zeros((1, 3)), np.zeros(1))

    def test_config_validation(self):
        with pytest.raises(ValueError, match="epochs"):
            TrainConfig(epochs=0)
        with pytest.raises(ValueError, match="batch_size"):
            TrainConfig(batch_size=0)
        with pytest.raises(ValueError, match="validation_split"):
            TrainConfig(validation_split=1.0)
        with pytest.raises(ValueError, match="early_stop_patience"):
            TrainConfig(early_stop_patience=0)
