"""Ablation: network depth/width around the paper's 3x64 choice.

Shape assertion: the paper's 3x64 architecture is in the top tier; a
single narrow layer underfits relative to it.
"""

import pytest

from repro.experiments.ablations import render_ablation, run_architecture_ablation


@pytest.fixture(scope="module")
def rows(ctx, suite):
    return run_architecture_ablation(ctx, suite=suite)


def test_architecture_ablation_report(benchmark, rows, report):
    benchmark(render_ablation, "Ablation: hidden architecture (power model)", rows)
    report("Ablation - architecture", render_ablation("Ablation: hidden architecture (power model)", rows))


def test_six_variants(rows):
    assert len(rows) == 6


def test_paper_architecture_top_tier(rows):
    accs = {r.variant: r.eval_accuracy for r in rows}
    assert accs["64x64x64"] >= max(accs.values()) - 3.0


def test_capacity_helps_on_train_fit(rows):
    errs = {r.variant: r.train_mape for r in rows}
    assert errs["64x64x64"] <= errs["32"] + 0.5
