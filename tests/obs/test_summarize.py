"""Trace summarizer: aggregation, rendering, corrupt-tail tolerance."""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.obs.summarize import load_events, render_summary, summarize_events, summarize_file


def _span(name, dur, thread="MainThread"):
    return {"type": "span", "name": name, "dur_s": dur, "thread": thread}


class TestSummarize:
    def test_groups_spans_by_name(self):
        events = [_span("a", 0.1), _span("a", 0.3), _span("b", 0.2)]
        summary = summarize_events(events)
        assert summary["spans"]["a"]["count"] == 2
        assert summary["spans"]["a"]["total_s"] == pytest.approx(0.4)
        assert summary["spans"]["a"]["mean_s"] == pytest.approx(0.2)
        assert summary["spans"]["a"]["max_s"] == pytest.approx(0.3)
        assert summary["spans"]["b"]["count"] == 1

    def test_percentiles_from_durations(self):
        events = [_span("a", d) for d in (0.1, 0.2, 0.3, 0.4, 0.5)]
        row = summarize_events(events)["spans"]["a"]
        assert row["p50_s"] == pytest.approx(0.3)
        assert row["p90_s"] == pytest.approx(0.46)
        assert row["p95_s"] == pytest.approx(0.48)
        assert row["p99_s"] <= row["max_s"]
        assert row["p50_s"] <= row["p95_s"] <= row["p99_s"]

    def test_summary_is_json_ready(self):
        events = [_span("a", 0.1), {"type": "event", "name": "e", "thread": "t"}]
        payload = json.dumps(summarize_events(events))
        restored = json.loads(payload)
        assert restored["spans"]["a"]["p95_s"] == pytest.approx(0.1)
        assert restored["events"] == {"e": 1}

    def test_counts_instant_events_and_threads(self):
        events = [
            _span("a", 0.1, thread="w-0"),
            _span("a", 0.1, thread="w-1"),
            {"type": "event", "name": "early_stop", "thread": "w-0"},
        ]
        summary = summarize_events(events)
        assert summary["events"] == {"early_stop": 1}
        assert summary["threads"] == 2
        assert summary["records"] == 3

    def test_render_orders_by_total_and_honours_top(self):
        events = [_span("small", 0.001), _span("big", 1.0), _span("big", 1.0)]
        summary = summarize_events(events)
        text = render_summary(summary)
        assert text.index("big") < text.index("small")
        assert "small" not in render_summary(summary, top=1)
        assert "p95" in text.splitlines()[2]

    def test_render_tolerates_pre_p95_summaries(self):
        summary = summarize_events([_span("a", 0.1)])
        for row in summary["spans"].values():
            row.pop("p95_s")
        assert "a" in render_summary(summary)


class TestLoadEvents:
    def test_round_trip_from_tracer(self, tmp_path):
        path = tmp_path / "t.jsonl"
        obs.configure(path)
        with obs.span("x"):
            obs.event("tick")
        obs.disable()
        events = load_events(path)
        assert [e["name"] for e in events] == ["tick", "x"]
        assert summarize_file(path)["spans"]["x"]["count"] == 1

    def test_tolerates_truncated_final_line(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text(json.dumps(_span("a", 0.1)) + "\n" + '{"type": "sp')
        assert [e["name"] for e in load_events(path)] == ["a"]

    def test_rejects_corruption_mid_file(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('garbage\n' + json.dumps(_span("a", 0.1)) + "\n")
        with pytest.raises(json.JSONDecodeError):
            load_events(path)


class TestEndToEndTrace:
    """One traced process covering collection, training, serving, and
    scheduling must summarize with all four span families present —
    the ISSUE's acceptance shape for ``repro obs summarize``."""

    def test_all_phases_visible_in_one_summary(self, tmp_path, tiny_models):
        from repro.cluster import FIFOScheduler, GPUNode, Job
        from repro.cluster.policy import StaticClockPolicy
        from repro.gpusim import GA100
        from repro.nn.network import FeedForwardNetwork
        from repro.nn.training import TrainConfig, train
        from repro.serving import SelectionService
        from repro.workloads import get_workload
        from tests.golden.tiny_pipeline import make_tiny_pipeline

        import numpy as np

        path = tmp_path / "trace.jsonl"
        obs.configure(path)
        try:
            # Training epochs.
            rng = np.random.default_rng(0)
            net = FeedForwardNetwork.build(3, (8,), 1, seed=0)
            train(net, rng.normal(size=(64, 3)), rng.normal(size=64),
                  config=TrainConfig(epochs=3, validation_split=0.25), seed=0)
            # Telemetry sampling + serving flush stages (workload-handle
            # requests profile on-device inside the flush).
            pipeline = make_tiny_pipeline(tiny_models)
            service = SelectionService(pipeline)
            from repro.serving import SelectionRequest

            service.select_many(
                [SelectionRequest.from_workload(get_workload("lammps"))]
            )
            # Scheduler decisions.
            node = GPUNode(0, GA100, gpus_per_node=1, seed=5, max_samples_per_run=4)
            jobs = [Job(job_id=i, workload=get_workload("dgemm"), arrival_s=0.0) for i in range(2)]
            FIFOScheduler([node], StaticClockPolicy(1000.0)).run(jobs)
        finally:
            obs.disable()

        summary = summarize_file(path)
        spans = summary["spans"]
        for family in (
            "telemetry.cell",      # telemetry sampling
            "nn.epoch",            # training epochs
            "serving.flush",       # serving flush...
            "serving.measure",     # ...and its stages
            "serving.predict",
            "serving.select",
            "cluster.decide",      # scheduler decisions
            "cluster.place",
        ):
            assert family in spans, f"missing span family {family}"
            row = spans[family]
            assert row["count"] >= 1
            assert 0.0 <= row["p50_s"] <= row["p99_s"] <= row["max_s"]
        assert spans["nn.epoch"]["count"] == 3
        assert spans["cluster.decide"]["count"] == 2
        text = render_summary(summary)
        assert "nn.epoch" in text and "cluster.decide" in text
