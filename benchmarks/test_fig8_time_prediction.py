"""Figure 8: normalized predicted vs measured execution time.

Shape assertions: high accuracy for the clock-sensitive apps; GROMACS
(the DVFS-insensitive case) overpredicted at low clocks, exactly as the
paper reports in Section 5.1.
"""

import numpy as np
import pytest

from repro.experiments.fig8 import render_fig8, run_fig8


@pytest.fixture(scope="module")
def fig8(ctx, suite):
    return run_fig8(ctx, suite=suite)


def test_fig8_report(benchmark, fig8, report):
    benchmark(render_fig8, fig8)
    report("Figure 8 - normalized time prediction per app", render_fig8(fig8))


def test_fig8_accuracy_floors(fig8):
    accs = {ev.app: ev.time_accuracy for ev in fig8.evaluations}
    for app, acc in accs.items():
        assert acc > 75.0, f"{app}: {acc:.1f}%"
    assert np.mean(list(accs.values())) > 83.0


def test_fig8_gromacs_overpredicted_at_low_clock(fig8):
    """Paper: GROMACS time 'slightly overpredicted at lower frequencies'."""
    freqs, meas, pred = fig8.normalized("gromacs")
    low = freqs < 800.0
    assert np.mean(pred[low] - meas[low]) > 0.0


def test_fig8_normalized_curves_anchored(fig8):
    for ev in fig8.evaluations:
        _, meas, pred = fig8.normalized(ev.app)
        assert meas[-1] == pytest.approx(1.0)
        assert pred[-1] == pytest.approx(1.0)
