"""Bootstrap-CI tests."""

import numpy as np
import pytest

from repro.analysis import bootstrap_ci
from repro.core import accuracy_percent, mape


@pytest.fixture()
def paired_data(rng):
    y = rng.uniform(100, 500, size=61)
    pred = y * (1.0 + rng.normal(0, 0.04, size=61))
    return y, pred


class TestBootstrap:
    def test_ci_contains_point_estimate(self, paired_data):
        y, pred = paired_data
        result = bootstrap_ci(y, pred, mape, seed=1)
        assert result.lower <= result.estimate <= result.upper

    def test_deterministic_with_seed(self, paired_data):
        y, pred = paired_data
        a = bootstrap_ci(y, pred, mape, seed=7)
        b = bootstrap_ci(y, pred, mape, seed=7)
        assert (a.lower, a.upper) == (b.lower, b.upper)

    def test_more_noise_wider_ci(self, rng):
        y = rng.uniform(100, 500, size=61)
        tight = y * (1.0 + rng.normal(0, 0.01, size=61))
        loose = y * (1.0 + rng.normal(0, 0.10, size=61))
        ci_tight = bootstrap_ci(y, tight, mape, seed=0)
        ci_loose = bootstrap_ci(y, loose, mape, seed=0)
        assert ci_loose.width > ci_tight.width

    def test_perfect_predictions_zero_width(self, rng):
        y = rng.uniform(10, 20, size=30)
        result = bootstrap_ci(y, y, mape, seed=0)
        assert result.estimate == 0.0
        assert result.width == 0.0

    def test_works_with_accuracy_metric(self, paired_data):
        y, pred = paired_data
        result = bootstrap_ci(y, pred, accuracy_percent, seed=0)
        assert 90.0 < result.estimate <= 100.0

    def test_contains_dunder(self, paired_data):
        y, pred = paired_data
        result = bootstrap_ci(y, pred, mape, seed=0)
        assert result.estimate in result

    def test_confidence_changes_width(self, paired_data):
        y, pred = paired_data
        narrow = bootstrap_ci(y, pred, mape, confidence=0.5, seed=0)
        wide = bootstrap_ci(y, pred, mape, confidence=0.99, seed=0)
        assert wide.width > narrow.width

    def test_validation(self, paired_data):
        y, pred = paired_data
        with pytest.raises(ValueError, match="mismatch"):
            bootstrap_ci(y, pred[:-1], mape)
        with pytest.raises(ValueError, match="at least 2"):
            bootstrap_ci(np.array([1.0]), np.array([1.0]), mape)
        with pytest.raises(ValueError, match="confidence"):
            bootstrap_ci(y, pred, mape, confidence=1.0)
        with pytest.raises(ValueError, match="n_resamples"):
            bootstrap_ci(y, pred, mape, n_resamples=2)
