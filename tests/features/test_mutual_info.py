"""KSG mutual-information estimator tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.features import mutual_information, mutual_information_matrix


class TestBasicProperties:
    def test_independent_variables_near_zero(self, rng):
        x = rng.standard_normal(2000)
        y = rng.standard_normal(2000)
        assert mutual_information(x, y) < 0.1

    def test_identical_variables_high(self, rng):
        x = rng.standard_normal(2000)
        assert mutual_information(x, x) > 2.0

    def test_noisy_linear_relation_detected(self, rng):
        x = rng.standard_normal(2000)
        y = 2.0 * x + 0.3 * rng.standard_normal(2000)
        assert mutual_information(x, y) > 0.8

    def test_nonlinear_relation_detected(self, rng):
        """MI (unlike Pearson r) sees non-monotone dependence."""
        x = rng.uniform(-2, 2, size=2000)
        y = x**2 + 0.1 * rng.standard_normal(2000)
        assert mutual_information(x, y) > 0.5
        assert abs(np.corrcoef(x, y)[0, 1]) < 0.15  # sanity: r misses it

    def test_non_negative(self, rng):
        for _ in range(5):
            x = rng.standard_normal(300)
            y = rng.standard_normal(300)
            assert mutual_information(x, y) >= 0.0

    def test_approximately_symmetric(self, rng):
        x = rng.standard_normal(800)
        y = x + 0.5 * rng.standard_normal(800)
        assert mutual_information(x, y, seed=1) == pytest.approx(
            mutual_information(y, x, seed=1), abs=0.08
        )

    def test_gaussian_analytic_value(self, rng):
        """For bivariate normal with correlation rho, I = -0.5 ln(1-rho^2)."""
        rho = 0.8
        n = 6000
        x = rng.standard_normal(n)
        y = rho * x + np.sqrt(1 - rho**2) * rng.standard_normal(n)
        expected = -0.5 * np.log(1 - rho**2)
        assert mutual_information(x, y) == pytest.approx(expected, rel=0.15)

    def test_deterministic_given_seed(self, rng):
        x = rng.standard_normal(500)
        y = x + rng.standard_normal(500)
        assert mutual_information(x, y, seed=5) == mutual_information(x, y, seed=5)

    def test_handles_discrete_ties(self, rng):
        """A discrete clock-grid variable must not crash the kNN search."""
        clock = rng.choice([510.0, 750.0, 1005.0, 1410.0], size=1000)
        power = 0.3 * clock + rng.standard_normal(1000)
        assert mutual_information(clock, power) > 0.3


class TestValidation:
    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="equal length"):
            mutual_information(np.zeros(10), np.zeros(11))

    def test_too_few_samples_rejected(self):
        with pytest.raises(ValueError, match="at least"):
            mutual_information(np.zeros(3), np.zeros(3), k=3)

    def test_invalid_k_rejected(self):
        with pytest.raises(ValueError, match="k must"):
            mutual_information(np.zeros(10), np.zeros(10), k=0)


class TestMatrix:
    def test_shape(self, rng):
        feats = rng.standard_normal((300, 4))
        targets = rng.standard_normal((300, 2))
        out = mutual_information_matrix(feats, targets)
        assert out.shape == (4, 2)

    def test_one_dim_target_promoted(self, rng):
        feats = rng.standard_normal((300, 3))
        out = mutual_information_matrix(feats, rng.standard_normal(300))
        assert out.shape == (3, 1)

    def test_informative_column_ranks_first(self, rng):
        n = 1500
        signal = rng.standard_normal(n)
        feats = np.column_stack([signal, rng.standard_normal(n), rng.standard_normal(n)])
        target = signal + 0.2 * rng.standard_normal(n)
        out = mutual_information_matrix(feats, target)
        assert out[0, 0] > out[1, 0]
        assert out[0, 0] > out[2, 0]

    def test_sample_count_mismatch_rejected(self, rng):
        with pytest.raises(ValueError, match="sample count"):
            mutual_information_matrix(rng.standard_normal((10, 2)), rng.standard_normal(11))


@given(scale=st.floats(min_value=0.1, max_value=100.0))
@settings(max_examples=20, deadline=None)
def test_scale_invariance(scale):
    """MI is invariant to affine rescaling of either variable."""
    rng = np.random.default_rng(0)
    x = rng.standard_normal(600)
    y = x + 0.5 * rng.standard_normal(600)
    base = mutual_information(x, y, seed=2)
    scaled = mutual_information(x * scale, y, seed=2)
    assert scaled == pytest.approx(base, abs=0.05)
