"""Real-world evaluation applications (paper Table 2, evaluation set).

These six applications are *never* used for model training — the paper's
portability claim is exactly that models trained on DGEMM/STREAM/SPEC
ACCEL predict them.  Each proxy is parameterised from the run the paper
describes (Section 5) and from each code's published GPU utilization
character:

* **LAMMPS** — Lennard-Jones 3-D melt: FP64 pair forces with neighbour
  lists; strongly compute-active with moderate DRAM traffic.
* **NAMD** — ApoA1 (92,224 atoms): PME electrostatics + bonded forces,
  compute-heavy mixed precision.
* **GROMACS** — lysozyme-in-water: offloads non-bonded forces but keeps
  integration/constraints on the CPU, so a large serial fraction makes its
  execution time nearly DVFS-insensitive (paper Section 5.1 observes
  exactly this and flags it as the hard case for the time model).
* **LSTM** — TensorFlow sentiment model on the IMDB review set: many tiny
  kernels, launch-bound, low utilization (paper Section 7: "workloads with
  low utilization (e.g., LSTM)").
* **BERT** — transformer fine-tuning on the same review set: large batched
  GEMMs, the most compute-dense of the six.
* **ResNet50** — CIFAR-10 training: convolutions with significant
  activation/weight traffic; mixed compute/memory.

``size`` scales the run length (timesteps / training steps); utilization
signatures are intensive and size-invariant, per paper Fig. 5.
"""

from __future__ import annotations

from repro.gpusim.kernel import KernelCensus
from repro.workloads.base import Workload, WorkloadCategory

__all__ = ["LAMMPS", "NAMD", "GROMACS", "LSTM", "BERT", "ResNet50"]


class LAMMPS(Workload):
    """Lennard-Jones 3-D melt, 4M atoms; ``size`` = timesteps."""

    name = "lammps"
    category = WorkloadCategory.REAL_APP
    default_size = 3000
    min_size = 10

    #: Per-timestep accounting: 4M atoms x ~70 neighbours x ~30 FLOPs.
    _ATOMS = 4_000_000
    _FLOPS_PER_STEP = _ATOMS * 70.0 * 30.0
    _BYTES_PER_STEP = _ATOMS * 200.0  # positions, neighbour lists, forces

    def census(self, size: int | None = None) -> KernelCensus:
        steps = float(self.resolve_size(size))
        return KernelCensus(
            flops_fp64=self._FLOPS_PER_STEP * steps,
            dram_bytes=self._BYTES_PER_STEP * steps,
            pcie_rx_bytes=self._ATOMS * 48.0,
            pcie_tx_bytes=self._ATOMS * 24.0,
            occupancy=0.80,
            compute_efficiency=0.76,
            memory_efficiency=0.72,
            compute_latency_fraction=0.70,
            serial_fraction=0.035,  # neighbour rebuilds + MPI-style halo work
        )


class NAMD(Workload):
    """ApoA1 benchmark (92,224 atoms); ``size`` = timesteps."""

    name = "namd"
    category = WorkloadCategory.REAL_APP
    default_size = 25000
    min_size = 10

    _ATOMS = 92_224
    # PME + bonded: ~400 interactions/atom/step at ~25 FLOPs each.
    _FLOPS_PER_STEP = _ATOMS * 400.0 * 25.0
    _BYTES_PER_STEP = _ATOMS * 450.0

    def census(self, size: int | None = None) -> KernelCensus:
        steps = float(self.resolve_size(size))
        return KernelCensus(
            flops_fp32=self._FLOPS_PER_STEP * steps,
            dram_bytes=self._BYTES_PER_STEP * steps,
            pcie_rx_bytes=self._ATOMS * 60.0,
            pcie_tx_bytes=self._ATOMS * 30.0,
            occupancy=0.83,
            compute_efficiency=0.80,
            memory_efficiency=0.74,
            compute_latency_fraction=0.68,
            serial_fraction=0.04,
        )


class GROMACS(Workload):
    """Lysozyme in water; ``size`` = timesteps.

    Non-bonded forces on the GPU, integration/constraints on the CPU: the
    serial fraction dominates enough that SM clock changes barely move the
    wall time — the DVFS-insensitive case paper Section 5.1 calls out.
    """

    name = "gromacs"
    category = WorkloadCategory.REAL_APP
    default_size = 20000
    min_size = 10

    _PARTICLES = 134_000  # lysozyme + solvent box
    _FLOPS_PER_STEP = _PARTICLES * 300.0 * 22.0
    _BYTES_PER_STEP = _PARTICLES * 380.0

    def census(self, size: int | None = None) -> KernelCensus:
        steps = float(self.resolve_size(size))
        return KernelCensus(
            flops_fp32=self._FLOPS_PER_STEP * steps,
            dram_bytes=self._BYTES_PER_STEP * steps,
            pcie_rx_bytes=self._PARTICLES * 36.0 * min(steps, 100.0),  # per-step position upload
            pcie_tx_bytes=self._PARTICLES * 24.0 * min(steps, 100.0),
            occupancy=0.78,
            compute_efficiency=0.78,
            memory_efficiency=0.70,
            compute_latency_fraction=0.35,
            serial_fraction=0.05,
            concurrent_host_fraction=1.20,  # CPU integration is the critical path
        )


class LSTM(Workload):
    """TensorFlow LSTM sentiment classifier on IMDB; ``size`` = steps.

    Sequential cell updates mean many small GEMMs and elementwise kernels:
    the GPU idles between launches, utilization is low, and a large share
    of each step is host-side input pipeline — the "low utilization" case
    that saves the most energy in the paper's evaluation.
    """

    name = "lstm"
    category = WorkloadCategory.REAL_APP
    default_size = 2000
    min_size = 10

    # batch 64, seq 250, hidden 128: 8 * h * (h + e) * 2 per token-ish.
    _FLOPS_PER_STEP = 64 * 250 * 8.0 * 128 * (128 + 64) * 2.0
    _BYTES_PER_STEP = 4.5e8  # small tensors re-streamed every cell step

    def census(self, size: int | None = None) -> KernelCensus:
        steps = float(self.resolve_size(size))
        return KernelCensus(
            flops_fp32=self._FLOPS_PER_STEP * steps,
            dram_bytes=self._BYTES_PER_STEP * steps,
            pcie_rx_bytes=steps * 64 * 250 * 4.0,
            pcie_tx_bytes=steps * 64.0 * 8.0,
            occupancy=0.35,
            compute_efficiency=0.45,  # tiny GEMMs never fill the machine
            memory_efficiency=0.50,
            compute_latency_fraction=0.35,
            serial_fraction=0.25,  # input pipeline stalls
            concurrent_host_fraction=1.70,  # feeding the GPU is the critical path
        )


class BERT(Workload):
    """BERT-base fine-tuning on the IMDB review set; ``size`` = steps.

    Batched transformer GEMMs keep tensor pipes saturated — the most
    compute-dense of the evaluation apps.
    """

    name = "bert"
    category = WorkloadCategory.REAL_APP
    default_size = 100
    min_size = 5

    # ~3 * 2 * params * tokens per training step (fwd + bwd), batch 32 x 128.
    _PARAMS = 110e6
    _TOKENS_PER_STEP = 32 * 128
    _FLOPS_PER_STEP = 6.0 * _PARAMS * _TOKENS_PER_STEP
    _BYTES_PER_STEP = 8.5e10  # weights + grads + activations + optimizer state

    def census(self, size: int | None = None) -> KernelCensus:
        steps = float(self.resolve_size(size))
        return KernelCensus(
            flops_fp32=self._FLOPS_PER_STEP * steps,
            dram_bytes=self._BYTES_PER_STEP * steps,
            pcie_rx_bytes=steps * self._TOKENS_PER_STEP * 8.0,
            pcie_tx_bytes=steps * 64.0,
            occupancy=0.90,
            compute_efficiency=0.86,
            memory_efficiency=0.75,
            compute_latency_fraction=0.62,
            serial_fraction=0.03,
        )


class ResNet50(Workload):
    """ResNet-50 training on CIFAR-10; ``size`` = training steps.

    Convolutions are compute-heavy but small CIFAR images keep layers
    short: activation/weight traffic and frequent layer boundaries leave
    it mixed compute/memory with a visible launch overhead — the paper's
    outlier app for frequency selection.
    """

    name = "resnet50"
    category = WorkloadCategory.REAL_APP
    default_size = 300
    min_size = 10

    # ~4 GFLOP fwd+bwd per 32x32 image at batch 128.
    _FLOPS_PER_STEP = 128 * 4.0e9
    _BYTES_PER_STEP = 4.6e10  # activations + weights, incl. rematerialization

    def census(self, size: int | None = None) -> KernelCensus:
        steps = float(self.resolve_size(size))
        return KernelCensus(
            flops_fp32=self._FLOPS_PER_STEP * steps,
            dram_bytes=self._BYTES_PER_STEP * steps,
            pcie_rx_bytes=steps * 128 * 32 * 32 * 3.0,
            pcie_tx_bytes=steps * 256.0,
            occupancy=0.72,
            compute_efficiency=0.62,
            memory_efficiency=0.68,
            compute_latency_fraction=0.50,
            serial_fraction=0.09,
        )
