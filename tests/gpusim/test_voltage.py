"""Voltage-curve tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpusim import GA100, VoltageCurve


@pytest.fixture()
def curve() -> VoltageCurve:
    return VoltageCurve(GA100)


class TestShape:
    def test_floor_below_knee(self, curve):
        assert curve.volts(300.0) == pytest.approx(GA100.voltage_min)
        assert curve.volts(curve.knee_mhz - 1.0) == pytest.approx(GA100.voltage_min)

    def test_max_voltage_at_max_clock(self, curve):
        assert curve.volts(1410.0) == pytest.approx(GA100.voltage_max)

    def test_knee_location(self, curve):
        assert curve.knee_mhz == pytest.approx(GA100.voltage_knee_fraction * 1410.0)

    def test_vectorized_matches_scalar(self, curve):
        freqs = np.array([300.0, 800.0, 1100.0, 1410.0])
        vec = curve.volts(freqs)
        scalars = [curve.volts(float(f)) for f in freqs]
        assert np.allclose(vec, scalars)

    @given(f1=st.floats(210.0, 1410.0), f2=st.floats(210.0, 1410.0))
    @settings(max_examples=100, deadline=None)
    def test_monotone_nondecreasing(self, curve, f1, f2):
        lo, hi = min(f1, f2), max(f1, f2)
        assert curve.volts(lo) <= curve.volts(hi) + 1e-12

    @given(f=st.floats(210.0, 1410.0))
    @settings(max_examples=100, deadline=None)
    def test_within_envelope(self, curve, f):
        v = curve.volts(f)
        assert GA100.voltage_min - 1e-12 <= v <= GA100.voltage_max + 1e-12


class TestDynamicPowerFactor:
    def test_unity_at_max_clock(self, curve):
        assert curve.dynamic_power_factor(1410.0) == pytest.approx(1.0)

    def test_monotone_increasing(self, curve):
        freqs = np.linspace(210.0, 1410.0, 50)
        dpf = curve.dynamic_power_factor(freqs)
        assert np.all(np.diff(dpf) > 0)

    def test_superlinear_above_knee(self, curve):
        """V rises with f above the knee, so dpf grows faster than f."""
        f1, f2 = 1100.0, 1410.0
        ratio_dpf = curve.dynamic_power_factor(f2) / curve.dynamic_power_factor(f1)
        assert ratio_dpf > f2 / f1

    def test_linear_below_knee(self, curve):
        """Constant V below the knee makes dpf proportional to f."""
        f1, f2 = 300.0, 600.0
        ratio = curve.dynamic_power_factor(f2) / curve.dynamic_power_factor(f1)
        assert ratio == pytest.approx(f2 / f1, rel=1e-9)


class TestOverrides:
    def test_override_applies_at_exact_clock(self, curve):
        curve.set_override(1005.0, 0.75)
        assert curve.volts(1005.0) == pytest.approx(0.75)

    def test_override_does_not_leak_to_neighbours(self, curve):
        baseline = curve.volts(1020.0)
        curve.set_override(1005.0, 0.75)
        assert curve.volts(1020.0) == pytest.approx(baseline)

    def test_override_changes_power_factor(self, curve):
        before = curve.dynamic_power_factor(1200.0)
        curve.set_override(1200.0, GA100.voltage_min)
        assert curve.dynamic_power_factor(1200.0) < before

    def test_clear_overrides(self, curve):
        baseline = curve.volts(1005.0)
        curve.set_override(1005.0, 0.75)
        curve.clear_overrides()
        assert curve.volts(1005.0) == pytest.approx(baseline)

    def test_nonpositive_override_rejected(self, curve):
        with pytest.raises(ValueError, match="positive"):
            curve.set_override(1005.0, 0.0)


class TestValidation:
    def test_nonpositive_gamma_rejected(self):
        with pytest.raises(ValueError, match="gamma"):
            VoltageCurve(GA100, gamma=0.0)

    def test_mismatched_arch_power_model_rejected(self):
        from repro.gpusim import GV100, PowerModel

        with pytest.raises(ValueError, match="different architecture"):
            PowerModel(GA100, voltage=VoltageCurve(GV100))
