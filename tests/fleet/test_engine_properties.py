"""Property-based tests for the cluster engine's scheduling invariants.

Cheap policies (no models, no services) keep each hypothesis example at
a few device runs, so the engine's bookkeeping — not the serving stack —
is what gets hammered.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import (
    ClusterEngine,
    GPUNode,
    Job,
    NodeOutage,
    StaticClockPolicy,
    summarize,
)
from repro.gpusim import GA100, GV100
from repro.workloads import get_workload

WORKLOADS = ("dgemm", "stream")


@st.composite
def job_lists(draw):
    n = draw(st.integers(1, 10))
    jobs = []
    for i in range(n):
        jobs.append(
            Job(
                job_id=i,
                workload=get_workload(draw(st.sampled_from(WORKLOADS))),
                arrival_s=draw(st.floats(0.0, 30.0)),
            )
        )
    return jobs


def make_nodes(order=(0, 1, 2)):
    """Three mixed-arch nodes; ``order`` permutes only list position."""
    build = {
        0: lambda: GPUNode(0, GA100, gpus_per_node=2, seed=11),
        1: lambda: GPUNode(1, GV100, gpus_per_node=2, seed=11),
        2: lambda: GPUNode(2, GA100, gpus_per_node=1, seed=11),
    }
    return [build[i]() for i in order]


def run_engine(jobs, order=(0, 1, 2), outages=()):
    engine = ClusterEngine(make_nodes(order), StaticClockPolicy(900.0), outages=outages)
    return engine.run(jobs)


@given(jobs=job_lists())
@settings(max_examples=15, deadline=None)
def test_no_two_jobs_overlap_on_one_board(jobs):
    result = run_engine(jobs)
    by_board: dict[tuple[int, int], list] = {}
    for r in result.records:
        by_board.setdefault((r.node_id, r.gpu_index), []).append(r)
    for records in by_board.values():
        records.sort(key=lambda r: r.start_s)
        for prev, nxt in zip(records, records[1:]):
            assert nxt.start_s >= prev.end_s, (
                f"jobs {prev.job_id} and {nxt.job_id} overlap on "
                f"node {prev.node_id} gpu {prev.gpu_index}"
            )


@given(jobs=job_lists())
@settings(max_examples=15, deadline=None)
def test_every_job_appears_in_exactly_one_record(jobs):
    result = run_engine(jobs)
    assert sorted(r.job_id for r in result.records) == sorted(j.job_id for j in jobs)


@given(jobs=job_lists())
@settings(max_examples=15, deadline=None)
def test_total_energy_is_sum_of_record_energies(jobs):
    result = run_engine(jobs)
    report = summarize("static", result.records)
    assert report.total_energy_j == pytest.approx(
        sum(r.energy_j for r in result.records), rel=0.0, abs=0.0
    )
    assert result.stats.wasted_energy_j == 0.0


@given(jobs=job_lists(), order=st.permutations([0, 1, 2]))
@settings(max_examples=15, deadline=None)
def test_records_invariant_to_node_iteration_order(jobs, order):
    canonical = run_engine(jobs).records
    permuted = run_engine(jobs, order=tuple(order)).records
    assert permuted == canonical


@given(jobs=job_lists(), down=st.floats(1.0, 40.0))
@settings(max_examples=10, deadline=None)
def test_invariants_hold_under_node_outage(jobs, down):
    """Exactly-one-record and no-overlap survive failure injection."""
    outage = NodeOutage(node_id=0, down_s=down, up_s=down + 25.0)
    result = run_engine(jobs, outages=(outage,))
    assert sorted(r.job_id for r in result.records) == sorted(j.job_id for j in jobs)
    for r in result.records:
        if r.node_id == outage.node_id:
            assert r.end_s <= outage.down_s or r.start_s >= outage.up_s
    assert result.stats.wasted_energy_j >= 0.0
