"""Golden regression suite for the fleet scenarios.

Asserts the committed metrics of ``baseline`` and ``capped`` at seed 0
are reproduced *bitwise* — the rendered JSON must equal the committed
file byte for byte — and that a same-process rerun is bitwise-stable.

If a change is intentional, regenerate with::

    PYTHONPATH=src:. python scripts/regen_fleet_golden.py
"""

from __future__ import annotations

import pytest

from tests.golden.fleet_scenarios import (
    GOLDEN_SCENARIOS,
    fleet_payload,
    golden_path,
    render,
)


@pytest.fixture(scope="module", params=GOLDEN_SCENARIOS)
def scenario_name(request):
    return request.param


def test_matches_committed_golden(scenario_name):
    path = golden_path(scenario_name)
    assert path.exists(), (
        f"missing {path.name}; generate it with "
        "`PYTHONPATH=src:. python scripts/regen_fleet_golden.py`"
    )
    assert render(fleet_payload(scenario_name)) == path.read_text()


def test_rerun_is_bitwise_stable():
    first = fleet_payload("baseline")
    second = fleet_payload("baseline")
    assert render(first) == render(second)
