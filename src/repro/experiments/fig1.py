"""Figure 1: power / time / energy / FLOPS / bandwidth vs frequency.

Sweeps DGEMM (compute-bound) and STREAM (memory-bound) across the 61
usable GA100 clocks and reports the eight panels of paper Fig. 1:
(a/e) power, (b/f) execution time, (c/g) energy, (d) DGEMM FLOPS, and
(h) STREAM bandwidth.

Expected shapes (checked by the bench): nonlinear increasing power,
inverse-nonlinear time, U-shaped energy with the DGEMM optimum at a
higher clock than STREAM's, near-linear FLOPS, and bandwidth flattening
around ~900 MHz.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.context import ExperimentContext
from repro.experiments.report import render_series
from repro.workloads.base import Workload

__all__ = ["WorkloadSweep", "Fig1Result", "run_fig1", "render_fig1"]


@dataclass(frozen=True)
class WorkloadSweep:
    """One workload's measured curves across the clock grid."""

    workload: str
    freqs_mhz: np.ndarray
    power_w: np.ndarray
    time_s: np.ndarray
    energy_j: np.ndarray
    flops_per_s: np.ndarray
    bandwidth_bytes_per_s: np.ndarray

    @property
    def energy_optimal_mhz(self) -> float:
        """Clock minimising energy."""
        return float(self.freqs_mhz[np.argmin(self.energy_j)])

    @property
    def time_optimal_mhz(self) -> float:
        """Clock minimising execution time."""
        return float(self.freqs_mhz[np.argmin(self.time_s)])


@dataclass(frozen=True)
class Fig1Result:
    """Both micro-benchmark sweeps."""

    dgemm: WorkloadSweep
    stream: WorkloadSweep


def _sweep(ctx: ExperimentContext, workload: Workload, *, runs: int) -> WorkloadSweep:
    device = ctx.device("GA100")
    census = workload.census()
    freqs = device.dvfs.usable_array()
    power = np.empty(freqs.size)
    time = np.empty(freqs.size)
    for i, f in enumerate(freqs):
        records = [device.run_at(census, f, workload_name=workload.name) for _ in range(runs)]
        power[i] = float(np.mean([r.mean_power_w for r in records]))
        time[i] = float(np.mean([r.exec_time_s for r in records]))
    return WorkloadSweep(
        workload=workload.name,
        freqs_mhz=freqs,
        power_w=power,
        time_s=time,
        energy_j=power * time,
        flops_per_s=census.total_flops / time,
        bandwidth_bytes_per_s=census.dram_bytes / time,
    )


def run_fig1(ctx: ExperimentContext) -> Fig1Result:
    """Measure both micro-benchmark sweeps on GA100."""
    runs = ctx.settings.truth_runs_per_config
    return Fig1Result(
        dgemm=_sweep(ctx, ctx.registry.get("dgemm"), runs=runs),
        stream=_sweep(ctx, ctx.registry.get("stream"), runs=runs),
    )


def render_fig1(result: Fig1Result) -> str:
    """The eight panels as compact series."""
    d, s = result.dgemm, result.stream
    lines = [
        "Figure 1 - DVFS characterization on GA100 (61 configs, 510-1410 MHz)",
        render_series("(a) DGEMM power [W]", d.freqs_mhz, d.power_w),
        render_series("(b) DGEMM time [s]", d.freqs_mhz, d.time_s),
        render_series("(c) DGEMM energy [J]", d.freqs_mhz, d.energy_j),
        render_series("(d) DGEMM FLOPS", d.freqs_mhz, d.flops_per_s),
        render_series("(e) STREAM power [W]", s.freqs_mhz, s.power_w),
        render_series("(f) STREAM time [s]", s.freqs_mhz, s.time_s),
        render_series("(g) STREAM energy [J]", s.freqs_mhz, s.energy_j),
        render_series("(h) STREAM bandwidth [B/s]", s.freqs_mhz, s.bandwidth_bytes_per_s),
        f"DGEMM optimal energy @ {d.energy_optimal_mhz:.0f} MHz, optimal time @ {d.time_optimal_mhz:.0f} MHz",
        f"STREAM optimal energy @ {s.energy_optimal_mhz:.0f} MHz, optimal time @ {s.time_optimal_mhz:.0f} MHz",
    ]
    return "\n".join(lines)
