"""Profile module (paper Section 4.1): run an app, sample metrics.

The paper samples DCGM fields every 20 ms for the whole execution so that
even short workloads contribute a statistically significant number of
rows.  Here the device produces those samples; the profiler converts them
to field-keyed records and run-level aggregates.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpusim.device import RunRecord, SimulatedGPU
from repro.telemetry.fields import FIELDS
from repro.workloads.base import Workload

__all__ = ["Profiler"]


@dataclass
class Profiler:
    """Executes workloads on one device and collects per-sample metrics."""

    device: SimulatedGPU

    def profile(self, workload: Workload, *, size: int | None = None) -> RunRecord:
        """One profiled execution at the device's current clock."""
        census = workload.census(size)
        return self.device.run(census, workload_name=workload.name)

    def samples_as_rows(self, record: RunRecord) -> list[dict[str, float]]:
        """Per-sample rows keyed by field name (plus ``timestamp_s``).

        This is the row format the CSV writer persists — one row per 20 ms
        sample, mirroring the paper's framework output.
        """
        rows: list[dict[str, float]] = []
        for sample in record.samples:
            row: dict[str, float] = {"timestamp_s": sample.timestamp_s}
            for f in FIELDS:
                row[f.name] = float(getattr(sample, f.name))
            rows.append(row)
        return rows

    def aggregate(self, record: RunRecord) -> dict[str, float]:
        """Run-level aggregates (means; sums for traffic counters)."""
        return record.metrics()
