"""Day-scale fleet campaign (slow tier).

One simulated day on the ``day`` scenario must push >= 1e5 selections
through the per-node services — the acceptance bar for serving-layer
throughput at fleet scale — while completing every submitted job.
"""

from __future__ import annotations

import pytest

from repro.fleet import FleetSimulator, get_scenario


@pytest.mark.slow
def test_one_day_campaign_drives_1e5_selections():
    result = FleetSimulator(get_scenario("day"), seed=0).run()
    metrics = result.metrics()
    assert metrics["selections_total"] >= 100_000
    assert metrics["jobs_completed"] == metrics["jobs_submitted"]
    assert metrics["makespan_s"] >= 86_400.0 * 0.9
    assert metrics["total_energy_j"] == sum(r.energy_j for r in result.records)
