"""Cluster-policy bench: fleet-scale impact of per-job DVFS selection.

Shape assertions: the model-driven ED2P policy saves a large share of
the default policy's energy at a much smaller makespan penalty than a
blunt static cap — the operational version of the paper's headline
claim.
"""

import pytest

from repro.experiments.cluster_study import render_cluster_study, run_cluster_study


@pytest.fixture(scope="module")
def study(ctx):
    return run_cluster_study(ctx)


def test_cluster_report(benchmark, study, report):
    benchmark(render_cluster_study, study)
    report("Cluster policy study", render_cluster_study(study))


def test_model_policy_saves_energy(study):
    base = study.report("default-clock")
    model = study.report("model-driven")
    assert model.energy_saving_vs(base) > 0.30


def test_model_policy_beats_static_cap_on_makespan(study):
    base = study.report("default-clock")
    static = study.report("static-cap")
    model = study.report("model-driven")
    assert model.makespan_change_vs(base) < static.makespan_change_vs(base)


def test_model_makespan_penalty_bounded(study):
    base = study.report("default-clock")
    assert study.report("model-driven").makespan_change_vs(base) < 0.15


def test_peak_power_drops(study):
    base = study.report("default-clock")
    for name in ("static-cap", "model-driven"):
        assert study.report(name).peak_power_w < 0.75 * base.peak_power_w


def test_per_app_decisions_below_boost(study):
    assert study.decisions_mhz
    assert all(clock < 1410.0 for clock in study.decisions_mhz.values())
