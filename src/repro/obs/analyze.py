"""Trace analytics: span trees, time attribution, flamegraphs, run diffs.

:mod:`repro.obs.trace` emits a *flat* stream of span/event records (one
JSON object per closed span).  This module is the consumer side: it
reconstructs the span forest a run executed, attributes time to each
span (cumulative vs *self* — the time a span spent outside its traced
children), extracts the critical path, exports collapsed-stack
flamegraph input (``flamegraph.pl`` / speedscope compatible), and diffs
two runs' trees into a per-phase delta table.

Reconstruction facts the tracer guarantees (asserted by the hypothesis
suite in ``tests/obs/test_properties.py``):

* span ids are assigned at *entry* in one monotone counter, so sorting
  children by id recovers start order;
* records are emitted at *close*, so a parent always appears after its
  children in the stream — tree building must therefore index first,
  attach second;
* nesting is per-thread LIFO, so same-thread children lie strictly
  inside their parent's interval and ``self = dur - sum(child durs)``
  is non-negative up to clock granularity, and self-times of a tree sum
  exactly to the root's cumulative time.

A record whose parent is missing from the stream (ring-buffer eviction,
truncated file) is promoted to a root rather than dropped, so partial
traces still analyze.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.obs.summarize import load_events

__all__ = [
    "SpanNode",
    "build_span_forest",
    "forest_from_file",
    "attribution",
    "critical_path",
    "to_collapsed",
    "write_collapsed",
    "diff_attribution",
    "DiffRow",
    "render_attribution",
    "render_critical_path",
    "render_diff",
]


@dataclass
class SpanNode:
    """One reconstructed span (or instant event) in the tree."""

    name: str
    span_id: int
    parent_id: int | None
    thread: str
    ts: float
    dur_s: float
    kind: str  # "span" | "event"
    attrs: dict
    children: list["SpanNode"] = field(default_factory=list)
    #: Time not covered by traced children (== dur_s for leaves).
    self_s: float = 0.0

    def walk(self):
        """Yield this node then every descendant, depth-first pre-order."""
        yield self
        for child in self.children:
            yield from child.walk()

    def depth_of(self, node: "SpanNode") -> int | None:
        """Depth of ``node`` below this root (0 = the root itself)."""
        for depth, candidate in self._walk_depth(0):
            if candidate is node:
                return depth
        return None

    def _walk_depth(self, depth: int):
        yield depth, self
        for child in self.children:
            yield from child._walk_depth(depth + 1)


def build_span_forest(events: list[dict]) -> list[SpanNode]:
    """Reconstruct the span forest from a flat record stream.

    Returns the roots ordered by span id (= start order).  Instant
    events become zero-duration leaves with ``kind == "event"``; they
    never affect self-time.
    """
    nodes: dict[int, SpanNode] = {}
    ordered: list[SpanNode] = []
    for record in events:
        if record.get("type") not in ("span", "event"):
            continue
        node = SpanNode(
            name=str(record.get("name", "?")),
            span_id=int(record.get("span_id", 0)),
            parent_id=record.get("parent_id"),
            thread=str(record.get("thread", "?")),
            ts=float(record.get("ts", 0.0)),
            dur_s=float(record.get("dur_s", 0.0)),
            kind=str(record.get("type")),
            attrs=dict(record.get("attrs") or {}),
        )
        nodes[node.span_id] = node
        ordered.append(node)

    roots: list[SpanNode] = []
    for node in ordered:
        parent = nodes.get(node.parent_id) if node.parent_id is not None else None
        if parent is None or parent is node:
            roots.append(node)
        else:
            parent.children.append(node)

    for node in ordered:
        node.children.sort(key=lambda n: n.span_id)
        node.self_s = node.dur_s - sum(c.dur_s for c in node.children if c.kind == "span")
    roots.sort(key=lambda n: n.span_id)
    return roots


def forest_from_file(path: str | Path) -> list[SpanNode]:
    """Load a JSONL trace and reconstruct its span forest."""
    return build_span_forest(load_events(path))


# ----------------------------------------------------------------------
# Attribution
# ----------------------------------------------------------------------
def attribution(forest: list[SpanNode]) -> dict[str, dict]:
    """Per-span-name time attribution across the whole forest.

    Each row carries ``count``, cumulative time (``cum_s`` — sums every
    occurrence, so recursive same-name nests double-count, as in every
    profiler), ``self_s``, and ``max_cum_s``.  Instant events are
    excluded (they own no time).
    """
    rows: dict[str, dict] = {}
    for root in forest:
        for node in root.walk():
            if node.kind != "span":
                continue
            row = rows.setdefault(
                node.name, {"count": 0, "cum_s": 0.0, "self_s": 0.0, "max_cum_s": 0.0}
            )
            row["count"] += 1
            row["cum_s"] += node.dur_s
            row["self_s"] += node.self_s
            row["max_cum_s"] = max(row["max_cum_s"], node.dur_s)
    return rows


def critical_path(forest: list[SpanNode]) -> list[SpanNode]:
    """Heaviest root-to-leaf chain: at each level, the child with the
    largest cumulative time.  Empty forest gives an empty path."""
    spans = [r for r in forest if r.kind == "span"]
    if not spans:
        return []
    node = max(spans, key=lambda n: n.dur_s)
    path = [node]
    while True:
        children = [c for c in node.children if c.kind == "span"]
        if not children:
            return path
        node = max(children, key=lambda n: n.dur_s)
        path.append(node)


# ----------------------------------------------------------------------
# Flamegraph export
# ----------------------------------------------------------------------
def to_collapsed(forest: list[SpanNode]) -> str:
    """Collapsed-stack flamegraph format: ``a;b;c <self-nanoseconds>``.

    One line per distinct stack, weights are integer *self* times in
    nanoseconds (clamped at 0 — timer granularity can make a crowded
    parent's self marginally negative).  Identical stacks are summed.
    The output feeds ``flamegraph.pl`` directly and imports into
    speedscope as Brendan-Gregg-collapsed.
    """
    weights: dict[tuple[str, ...], int] = {}

    def visit(node: SpanNode, stack: tuple[str, ...]) -> None:
        if node.kind != "span":
            return
        here = stack + (node.name,)
        weights[here] = weights.get(here, 0) + max(0, round(node.self_s * 1e9))
        for child in node.children:
            visit(child, here)

    for root in forest:
        visit(root, ())
    lines = [f"{';'.join(stack)} {weight}" for stack, weight in sorted(weights.items())]
    return "\n".join(lines)


def write_collapsed(forest: list[SpanNode], target: str | Path) -> Path:
    """Write the collapsed-stack export (returns the path written)."""
    path = Path(target)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(to_collapsed(forest) + "\n", encoding="utf-8")
    return path


# ----------------------------------------------------------------------
# Run diffing
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class DiffRow:
    """One span name compared across two runs (a = before, b = after)."""

    name: str
    count_a: int
    count_b: int
    cum_a_s: float
    cum_b_s: float
    self_a_s: float
    self_b_s: float

    @property
    def delta_cum_s(self) -> float:
        return self.cum_b_s - self.cum_a_s

    @property
    def delta_self_s(self) -> float:
        return self.self_b_s - self.self_a_s

    @property
    def cum_ratio(self) -> float | None:
        """b/a cumulative ratio, or None when the span is new in b."""
        return self.cum_b_s / self.cum_a_s if self.cum_a_s > 0.0 else None


def diff_attribution(
    events_a: list[dict] | list[SpanNode],
    events_b: list[dict] | list[SpanNode],
) -> list[DiffRow]:
    """Per-phase delta table between two runs' span trees.

    Accepts raw event lists or prebuilt forests.  Rows cover the union
    of span names, sorted by the magnitude of the self-time delta so the
    phase that moved most is first.
    """

    def rows_of(events) -> dict[str, dict]:
        if events and isinstance(events[0], SpanNode):
            return attribution(events)
        return attribution(build_span_forest(events))

    a, b = rows_of(events_a), rows_of(events_b)
    empty = {"count": 0, "cum_s": 0.0, "self_s": 0.0, "max_cum_s": 0.0}
    out = [
        DiffRow(
            name=name,
            count_a=a.get(name, empty)["count"],
            count_b=b.get(name, empty)["count"],
            cum_a_s=a.get(name, empty)["cum_s"],
            cum_b_s=b.get(name, empty)["cum_s"],
            self_a_s=a.get(name, empty)["self_s"],
            self_b_s=b.get(name, empty)["self_s"],
        )
        for name in sorted(set(a) | set(b))
    ]
    out.sort(key=lambda r: (-abs(r.delta_self_s), r.name))
    return out


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
def _fmt_s(seconds: float) -> str:
    if abs(seconds) < 1e-3:
        return f"{seconds * 1e6:9.1f}µs"
    if abs(seconds) < 1.0:
        return f"{seconds * 1e3:9.2f}ms"
    return f"{seconds:9.3f}s "


def render_attribution(forest: list[SpanNode], *, top: int | None = None) -> str:
    """Fixed-width self/cumulative table, heaviest self-time first."""
    rows = attribution(forest)
    total_self = sum(r["self_s"] for r in rows.values())
    lines = [
        f"{'span':32s} {'count':>7s} {'self':>11s} {'cum':>11s} "
        f"{'max':>11s} {'self%':>6s}"
    ]
    ranked = sorted(rows.items(), key=lambda kv: (-kv[1]["self_s"], kv[0]))
    if top is not None:
        ranked = ranked[:top]
    for name, row in ranked:
        share = 100.0 * row["self_s"] / total_self if total_self > 0.0 else 0.0
        lines.append(
            f"{name:32s} {row['count']:7d} {_fmt_s(row['self_s'])} "
            f"{_fmt_s(row['cum_s'])} {_fmt_s(row['max_cum_s'])} {share:5.1f}%"
        )
    return "\n".join(lines)


def render_critical_path(forest: list[SpanNode]) -> str:
    """Indented critical path with per-hop cumulative/self times."""
    path = critical_path(forest)
    if not path:
        return "critical path: (no spans)"
    root_cum = path[0].dur_s
    lines = ["critical path (heaviest child at each level):"]
    for depth, node in enumerate(path):
        share = 100.0 * node.dur_s / root_cum if root_cum > 0.0 else 0.0
        lines.append(
            f"  {'  ' * depth}{node.name}  cum {_fmt_s(node.dur_s).strip()} "
            f"self {_fmt_s(node.self_s).strip()} ({share:.1f}% of root)"
        )
    return "\n".join(lines)


def render_diff(rows: list[DiffRow], *, fmt: str = "text", top: int | None = None) -> str:
    """Delta table as fixed-width text or a GitHub-markdown table."""
    if top is not None:
        rows = rows[:top]
    if fmt == "markdown":
        lines = [
            "| span | count a→b | self a | self b | Δ self | cum b/a |",
            "|---|---|---|---|---|---|",
        ]
        for r in rows:
            ratio = f"{r.cum_ratio:.2f}x" if r.cum_ratio is not None else "new"
            lines.append(
                f"| `{r.name}` | {r.count_a}→{r.count_b} | {_fmt_s(r.self_a_s).strip()} "
                f"| {_fmt_s(r.self_b_s).strip()} | {_fmt_s(r.delta_self_s).strip()} | {ratio} |"
            )
        return "\n".join(lines)
    lines = [
        f"{'span':32s} {'count a':>8s} {'count b':>8s} {'self a':>11s} "
        f"{'self b':>11s} {'Δ self':>11s} {'cum b/a':>8s}"
    ]
    for r in rows:
        ratio = f"{r.cum_ratio:7.2f}x" if r.cum_ratio is not None else "     new"
        lines.append(
            f"{r.name:32s} {r.count_a:8d} {r.count_b:8d} {_fmt_s(r.self_a_s)} "
            f"{_fmt_s(r.self_b_s)} {_fmt_s(r.delta_self_s)} {ratio}"
        )
    return "\n".join(lines)
