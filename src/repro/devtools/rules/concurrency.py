"""Interprocedural concurrency rules: THR002/THR003/THR004 + RES001.

THR001 checks one lexical pattern inside one class.  These rules consume
:mod:`repro.devtools.concurrency` — execution contexts inferred over the
project call graph — so they can reason about *which threads actually
reach which code*:

* **THR002** — an attribute (or module global) accessed from both the
  main thread and a spawned thread context is mutated without holding a
  lock.  Unlike THR001 it fires on classes that own no lock at all, and
  it scopes itself to state that provably crosses a context boundary.
* **THR003** — two call paths acquire the same pair of locks in opposite
  orders (lexically nested ``with`` blocks, or a call made while holding
  a lock into a function that transitively acquires another).  An
  A->B / B->A cycle is a deadlock waiting for the right interleaving.
* **THR004** — a ``multiprocessing`` spawn captures fork-unsafe state in
  the child: a lock (may be held mid-fork), an open file handle (shared
  offset), RNG state (duplicated stream), a shared-memory handle, or a
  bound method dragging a whole lock-owning instance across ``fork`` —
  or the spawn itself happens while the parent holds a lock.
* **RES001** — a ``shared_memory``/file/lock resource is acquired into a
  local, and some exception path skips its release: no ``with``, no
  ``try/finally``, or can-raise statements sneak between the acquisition
  and the protecting ``try``.  (Per-file escape analysis: resources that
  escape via return / attribute / container / call argument are assumed
  owned elsewhere.)

Suppression policy is the same as every other rule: fix the code, or
carry ``# repro: noqa[THR002] — <justification>`` on the offending line,
or add a justified ``baseline.json`` entry (see DESIGN.md §16).
"""

from __future__ import annotations

import ast
from types import SimpleNamespace
from typing import Iterable

from repro.devtools.concurrency import get_analysis
from repro.devtools.context import ModuleContext
from repro.devtools.findings import Finding
from repro.devtools.rules.base import Rule, register
from repro.devtools.rules.locking import _CONSTRUCTION_METHODS, _MUTATOR_METHODS, _self_attr

__all__ = [
    "RES001ResourceLifetime",
    "THR002SharedStateRace",
    "THR003LockOrderInversion",
    "THR004ForkCapture",
]


def _anchor(line: int, col: int) -> SimpleNamespace:
    """A node-shaped anchor for findings computed away from the AST."""
    return SimpleNamespace(lineno=line, col_offset=col)


# ----------------------------------------------------------------------
# THR002 — cross-context mutation without a lock
# ----------------------------------------------------------------------
@register
class THR002SharedStateRace(Rule):
    """State crossing a thread-context boundary mutates without a lock."""

    rule_id = "THR002"
    severity = "error"
    summary = "state shared across thread contexts mutated without holding a lock"
    rationale = (
        "Context inference over the call graph knows which methods run on "
        "spawned threads (Thread targets, executor submits) and which run on "
        "the main thread. An attribute reachable from both sides is shared "
        "state; mutating it without a lock is a data race even when the class "
        "never declared itself thread-safe — exactly the case THR001's "
        "lock-owning heuristic cannot see."
    )
    needs_project = True

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        if not ctx.in_package("repro") or ctx.project is None:
            return []
        analysis = get_analysis(ctx.project)
        findings: list[Finding] = []
        findings.extend(self._check_classes(ctx, analysis))
        findings.extend(self._check_globals(ctx, analysis))
        return findings

    def _check_classes(self, ctx: ModuleContext, analysis) -> list[Finding]:
        findings: list[Finding] = []
        index = analysis.index
        for qual, cinfo in index.classes.items():
            if cinfo.module != ctx.module:
                continue
            locks = analysis.class_locks.get(qual, frozenset())
            accesses = analysis.class_accesses.get(qual, [])
            # An attribute is shared when some method touching it runs on a
            # spawned thread with no lock held anywhere on the path (racy)
            # and some method touching it runs on the main thread.
            # Construction methods — and helpers only reachable from them —
            # are happens-before publication and do not count.
            attr_racy: dict[str, bool] = {}
            attr_main: dict[str, bool] = {}
            for access in accesses:
                method_qual = f"{qual}.{access.method}"
                if (
                    access.method in _CONSTRUCTION_METHODS
                    or method_qual in analysis.construction_only
                ):
                    continue
                attr_racy.setdefault(access.attr, False)
                attr_main.setdefault(access.attr, False)
                if method_qual in analysis.thread_racy:
                    attr_racy[access.attr] = True
                if method_qual in analysis.main_set:
                    attr_main[access.attr] = True
            shared = {
                attr for attr in attr_racy if attr_racy[attr] and attr_main[attr]
            } - locks
            if not shared:
                continue
            # Attributes THR001 already polices (mutated under a held lock
            # somewhere) stay THR001's jurisdiction — no double report.
            thr001_turf = analysis.thr001_guarded.get(qual, frozenset()) if locks else frozenset()
            hint = (
                f"outside 'with self.{sorted(locks)[0]}:'"
                if locks
                else "and the class owns no lock — add one (threading.Lock) and hold it"
            )
            for access in accesses:
                method_qual = f"{qual}.{access.method}"
                if (
                    not access.is_store
                    or access.method in _CONSTRUCTION_METHODS
                    or method_qual in analysis.construction_only
                ):
                    continue
                if access.attr not in shared or access.attr in thr001_turf:
                    continue
                if access.held_locks:
                    continue
                findings.append(
                    self.finding(
                        ctx,
                        _anchor(access.line, access.col),
                        f"{cinfo.node.name}.{access.method} mutates 'self.{access.attr}', "
                        f"which is reached from both the main thread and a spawned "
                        f"thread with no lock held, {hint}",
                    )
                )
        return findings

    def _check_globals(self, ctx: ModuleContext, analysis) -> list[Finding]:
        """Module globals mutated from a spawned-thread context."""
        findings: list[Finding] = []
        index = analysis.index
        module_locks = analysis.module_locks.get(ctx.module, frozenset())
        module_names = {
            t.id
            for stmt in ctx.tree.body
            if isinstance(stmt, ast.Assign)
            for t in stmt.targets
            if isinstance(t, ast.Name)
        }
        for qual, fn in index.functions.items():
            if fn.module != ctx.module:
                continue
            if qual not in analysis.thread_racy:
                continue
            declared_global = {
                name
                for node in ast.walk(fn.node)
                if isinstance(node, ast.Global)
                for name in node.names
            }
            for mutated, node, held in _global_mutations(fn.node, module_locks):
                if held:
                    continue
                rebind = mutated in declared_global
                in_place = mutated in module_names
                if not (rebind or in_place):
                    continue
                findings.append(
                    self.finding(
                        ctx,
                        node,
                        f"{fn.name} runs in a spawned-thread context and mutates module "
                        f"global '{mutated}' without holding a module-level lock",
                    )
                )
        return findings


def _global_mutations(fn: ast.AST, module_locks: frozenset[str]):
    """(name, node, lock-held) for Name rebinds / container mutations."""

    def scan(stmts, held: bool):
        for stmt in stmts:
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                holds = held or any(
                    isinstance(item.context_expr, ast.Name)
                    and item.context_expr.id in module_locks
                    for item in stmt.items
                )
                yield from scan(stmt.body, holds)
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue
            elif isinstance(stmt, (ast.If, ast.For, ast.AsyncFor, ast.While, ast.Try)):
                for block in ("body", "orelse", "finalbody"):
                    yield from scan(getattr(stmt, block, []) or [], held)
                for handler in getattr(stmt, "handlers", []) or []:
                    yield from scan(handler.body, held)
            elif isinstance(stmt, ast.Match):
                for case in stmt.cases:
                    yield from scan(case.body, held)
            else:
                if isinstance(stmt, (ast.Assign, ast.AugAssign)):
                    targets = stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
                    for target in targets:
                        if isinstance(target, ast.Name):
                            yield target.id, target, held
                for node in ast.walk(stmt):
                    if (
                        isinstance(node, ast.Call)
                        and isinstance(node.func, ast.Attribute)
                        and node.func.attr in _MUTATOR_METHODS
                        and isinstance(node.func.value, ast.Name)
                    ):
                        yield node.func.value.id, node, held

    if isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
        yield from scan(fn.body, False)


# ----------------------------------------------------------------------
# THR003 — lock-order inversion
# ----------------------------------------------------------------------
@register
class THR003LockOrderInversion(Rule):
    """Two call paths acquire the same locks in opposite orders."""

    rule_id = "THR003"
    severity = "error"
    summary = "lock-acquisition-order inversion across two call paths"
    rationale = (
        "If path 1 holds lock A while acquiring B and path 2 holds B while "
        "acquiring A (directly or through any chain of resolved calls), two "
        "threads can each hold one lock and wait forever on the other. The "
        "lock-order graph makes the global ordering explicit; any cycle is a "
        "latent deadlock regardless of how rarely the interleaving occurs."
    )
    needs_project = True

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        if not ctx.in_package("repro") or ctx.project is None:
            return []
        analysis = get_analysis(ctx.project)
        findings: list[Finding] = []
        for forward, backward in analysis.inversions():
            for edge, other in ((forward, backward), (backward, forward)):
                if edge.module != ctx.module:
                    continue
                via = f" (via call to {edge.via_call})" if edge.via_call else ""
                other_loc = f"{other.module}:{other.line}"
                other_via = f" via {other.via_call}" if other.via_call else ""
                findings.append(
                    self.finding(
                        ctx,
                        _anchor(edge.line, edge.col),
                        f"acquires '{edge.acquired}' while holding '{edge.held}'{via}, "
                        f"but {other_loc} acquires them in the opposite order"
                        f"{other_via} — lock-order inversion can deadlock",
                    )
                )
        return findings


# ----------------------------------------------------------------------
# THR004 — fork-unsafe captures
# ----------------------------------------------------------------------
@register
class THR004ForkCapture(Rule):
    """A multiprocessing spawn captures fork-unsafe state in the child."""

    rule_id = "THR004"
    severity = "error"
    summary = "lock / open file / RNG state captured across a process fork"
    rationale = (
        "fork() clones the parent mid-flight: a captured lock may be forever "
        "held in the child, a shared file descriptor interleaves writes "
        "through one offset, duplicated RNG state silently correlates the "
        "parent's and child's random streams, and a shared-memory handle "
        "double-unlinks on close. Workers must receive names/bytes and "
        "re-open resources on their side of the fork (as _shard_worker does)."
    )
    needs_project = True

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        if not ctx.in_package("repro") or ctx.project is None:
            return []
        analysis = get_analysis(ctx.project)
        findings: list[Finding] = []
        for cap in analysis.fork_captures:
            if cap.module != ctx.module:
                continue
            findings.append(
                self.finding(
                    ctx,
                    _anchor(cap.line, cap.col),
                    f"process spawn captures {cap.kind} ({cap.what}) across fork — "
                    "pass a name/bytes and reconstruct it in the child instead",
                )
            )
        for edge in analysis.fork_under_lock:
            if edge.module != ctx.module:
                continue
            findings.append(
                self.finding(
                    ctx,
                    _anchor(edge.line, edge.col),
                    f"process forked while holding '{edge.held}' — the child clones a "
                    "held lock and can deadlock on first acquire",
                )
            )
        return findings


# ----------------------------------------------------------------------
# RES001 — resource lifetime / escape analysis (per-file)
# ----------------------------------------------------------------------
#: Dotted factory -> human label for resources that must be released.
_RESOURCE_FACTORIES: dict[str, str] = {
    "multiprocessing.shared_memory.SharedMemory": "shared-memory block",
    "builtins.open": "file handle",
    "io.open": "file handle",
    "os.fdopen": "file handle",
    "gzip.open": "file handle",
    "bz2.open": "file handle",
    "lzma.open": "file handle",
    "tempfile.TemporaryFile": "temporary file",
    "tempfile.NamedTemporaryFile": "temporary file",
    "socket.socket": "socket",
}

#: Method names that release any of the above (or an acquired lock).
_RELEASE_METHODS = frozenset({"close", "release", "unlink", "shutdown", "terminate"})


@register
class RES001ResourceLifetime(Rule):
    """Acquired resources must release on every path (with / try-finally)."""

    rule_id = "RES001"
    severity = "error"
    summary = "acquired resource has an exception path that skips its release"
    rationale = (
        "A SharedMemory block that is attached but not closed leaks a file in "
        "/dev/shm until reboot; an unclosed file handle defers flushes to GC "
        "time; an acquire() without a finally-release deadlocks every later "
        "acquirer. Straight-line close() calls silently skip when anything "
        "between acquisition and release raises — only 'with' or try/finally "
        "(with nothing risky before the try) actually guarantees the release."
    )

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        if not ctx.in_package("repro"):
            return []
        findings: list[Finding] = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                findings.extend(self._check_function(ctx, node))
        return findings

    # ------------------------------------------------------------------
    def _check_function(self, ctx: ModuleContext, fn) -> list[Finding]:
        parents: dict[int, ast.AST] = {}
        with_exprs: set[int] = set()
        for node in ast.walk(fn):
            for child in ast.iter_child_nodes(node):
                parents.setdefault(id(child), node)
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    for sub in ast.walk(item.context_expr):
                        with_exprs.add(id(sub))

        acquisitions = self._acquisitions(ctx, fn, with_exprs)
        if not acquisitions:
            return []
        findings: list[Finding] = []
        for name, stmt, call, label in acquisitions:
            finding = self._classify(ctx, fn, name, stmt, call, label, parents)
            if finding is not None:
                findings.append(finding)
        return findings

    def _acquisitions(self, ctx, fn, with_exprs):
        """(local name, statement, call node, label) acquisition events."""
        out = []
        for node in ast.walk(fn):
            if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
                if id(node.value) in with_exprs:
                    continue
                label = self._factory_label(ctx, node.value)
                if label is None:
                    continue
                if len(node.targets) == 1 and isinstance(node.targets[0], ast.Name):
                    out.append((node.targets[0].id, node, node.value, label))
            elif (
                isinstance(node, ast.Expr)
                and isinstance(node.value, ast.Call)
                and isinstance(node.value.func, ast.Attribute)
                and node.value.func.attr == "acquire"
                and isinstance(node.value.func.value, ast.Name)
            ):
                # Explicit lock.acquire() on a local: must release in finally.
                out.append((node.value.func.value.id, node, node.value, "acquired lock"))
        return out

    def _factory_label(self, ctx, call: ast.Call) -> str | None:
        resolved = ctx.resolve(call.func)
        if resolved is None and isinstance(call.func, ast.Name) and call.func.id == "open":
            resolved = "builtins.open"
        return _RESOURCE_FACTORIES.get(resolved or "")

    def _classify(self, ctx, fn, name, acq_stmt, call, label, parents):
        releases: list[ast.AST] = []
        escapes = False
        for node in ast.walk(fn):
            if node is acq_stmt:
                continue
            if isinstance(node, ast.Call):
                if (
                    isinstance(node.func, ast.Attribute)
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id == name
                ):
                    if node.func.attr in _RELEASE_METHODS:
                        releases.append(node)
                    continue  # a method call on the resource is a use, not an escape
                if any(
                    isinstance(a, ast.Name) and a.id == name
                    for a in (*node.args, *(k.value for k in node.keywords))
                ):
                    escapes = True
            elif isinstance(node, (ast.Return, ast.Yield, ast.YieldFrom)):
                # The object escapes only when the reference itself is
                # returned (bare, or inside a container); a derived read
                # like ``return bytes(shm.buf[:4])`` copies the data and
                # leaves ownership — and the leak — right here.
                value = node.value
                if value is not None and any(
                    isinstance(n, ast.Name)
                    and n.id == name
                    and not isinstance(parents.get(id(n)), ast.Attribute)
                    for n in ast.walk(value)
                ):
                    escapes = True
            elif isinstance(node, ast.Assign):
                rhs_uses = any(
                    isinstance(n, ast.Name) and n.id == name for n in ast.walk(node.value)
                )
                plain_rebind = all(
                    isinstance(t, ast.Name) for t in node.targets
                )
                if rhs_uses and not plain_rebind:
                    escapes = True  # stored into an attribute / subscript
            elif isinstance(node, (ast.List, ast.Tuple, ast.Dict, ast.Set)):
                if any(
                    isinstance(n, ast.Name) and n.id == name
                    for n in ast.walk(node)
                ) and id(node) not in (id(t) for t in getattr(acq_stmt, "targets", [])):
                    escapes = True
        if escapes:
            return None
        if not releases:
            return self.finding(
                ctx,
                call,
                f"{label} '{name}' is acquired but never released in {fn.name} — "
                "use 'with' or close it in a try/finally",
            )
        protected = [r for r in releases if self._finally_try(r, parents) is not None]
        if protected:
            shield = self._finally_try(protected[0], parents)
            risky = self._risky_gap(fn, acq_stmt, shield, parents)
            if risky:
                return self.finding(
                    ctx,
                    call,
                    f"{label} '{name}' leaks if a statement between its acquisition "
                    f"and the protecting 'try' raises (first risk at line {risky}) — "
                    "move the acquisition adjacent to the try or nest try/finally",
                )
            return None
        first_release = min(releases, key=lambda r: r.lineno)
        risky = self._risky_between(fn, acq_stmt, first_release)
        if risky:
            return self.finding(
                ctx,
                call,
                f"{label} '{name}' is released only on the straight-line path; an "
                f"exception before {name}.{first_release.func.attr}() (first risk at "
                f"line {risky}) skips the release — use 'with' or try/finally",
            )
        return None

    @staticmethod
    def _finally_try(node: ast.AST, parents) -> ast.Try | None:
        """The Try whose finalbody contains ``node``, if any."""
        child = node
        current = parents.get(id(node))
        while current is not None:
            if isinstance(current, ast.Try):
                in_finally = any(
                    child is stmt or any(child is sub for sub in ast.walk(stmt))
                    for stmt in current.finalbody
                )
                if in_finally:
                    return current
            child = current
            current = parents.get(id(current))
        return None

    def _risky_gap(self, fn, acq_stmt, shield: ast.Try, parents) -> int | None:
        """First can-raise line strictly between acquisition and the try.

        Acquisition inside the try body is fine (the finally runs).  When
        both sit in the same block, any can-raise statement between them
        leaks the resource before the finally exists.
        """
        if any(acq_stmt is s or any(acq_stmt is n for n in ast.walk(s)) for s in shield.body):
            return None
        acq_parent = parents.get(id(acq_stmt))
        shield_parent = parents.get(id(shield))
        if acq_parent is not shield_parent:
            return None  # different blocks: give the benefit of the doubt
        for block_name in ("body", "orelse", "finalbody"):
            block = getattr(acq_parent, block_name, None)
            if isinstance(block, list) and acq_stmt in block and shield in block:
                start, end = block.index(acq_stmt), block.index(shield)
                for stmt in block[start + 1 : end]:
                    line = _first_risky_line(stmt)
                    if line is not None:
                        return line
        return None

    @staticmethod
    def _risky_between(fn, acq_stmt, release_call) -> int | None:
        """First can-raise line between acquisition and an unprotected release."""
        lo, hi = acq_stmt.lineno, release_call.lineno
        for node in ast.walk(fn):
            if not isinstance(node, (ast.Call, ast.Raise)):
                continue
            if node is release_call or node is getattr(acq_stmt, "value", None):
                continue
            if lo < node.lineno < hi:
                return node.lineno
        return None


def _first_risky_line(stmt: ast.stmt) -> int | None:
    for node in ast.walk(stmt):
        if isinstance(node, (ast.Call, ast.Raise)):
            return node.lineno
    return None
