"""Rule registry: importing this package registers every built-in rule."""

from repro.devtools.rules.base import Rule, all_rules, get_rule, register, rule_ids

# Importing the rule modules registers them (order fixes registry ids).
from repro.devtools.rules import determinism as _determinism  # noqa: E402,F401
from repro.devtools.rules import locking as _locking  # noqa: E402,F401
from repro.devtools.rules import concurrency as _concurrency  # noqa: E402,F401
from repro.devtools.rules import numeric as _numeric  # noqa: E402,F401
from repro.devtools.rules import numerics as _numerics  # noqa: E402,F401
from repro.devtools.rules import observability as _observability  # noqa: E402,F401
from repro.devtools.rules import parse as _parse  # noqa: E402,F401
from repro.devtools.rules import seedflow as _seedflow  # noqa: E402,F401
from repro.devtools.rules import units as _units  # noqa: E402,F401

__all__ = ["Rule", "all_rules", "get_rule", "register", "rule_ids"]
